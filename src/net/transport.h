// Non-blocking TCP transport for the network fabric, built on the
// EventLoop's epoll facility.
//
// Server accepts connections on a bound port (port 0 picks an ephemeral
// port; tests discover it via port()) and runs every connection on the
// loop thread: reads are drained to EAGAIN into a FrameParser, complete
// frames are dispatched to a FrameHandler, and writes go through a bounded
// per-connection outbound buffer — partial writes keep the remainder
// buffered and watch kFdWritable until it drains.
//
// Backpressure: when a connection's outbound buffer is full, droppable
// frames (subscription deliveries — the cursor does not advance, so the
// data is re-sent later) are skipped and counted; a non-droppable frame
// (a response the peer is waiting for) closes the connection instead of
// buffering without bound.
//
// Fault sites (an attached FaultInjector is consulted with the frame's
// MsgTypeName as the topic filter):
//   kNetSend   - frame send fails (responses close the connection) or is
//                delayed by charging the loop clock
//   kNetRecv   - received frame dropped before dispatch, or delayed
//   kConnDrop  - connection abruptly closed before dispatching a frame
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "eventloop/event_loop.h"
#include "net/frame.h"

namespace apollo::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned; see Server::port()
  std::string server_name = "apollod";
  // Outbound buffer bound per connection (bytes) before backpressure.
  std::size_t max_outbound_bytes = 4u << 20;
  // Connections with no traffic for this long are reaped (0 disables).
  TimeNs idle_timeout = 30 * kNsPerSec;
};

class Connection;
class Server;

// Implemented by the daemon. Both callbacks run on the loop thread.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual void OnFrame(Connection& conn, const Frame& frame) = 0;
  // The connection is closing (any reason); per-connection state such as
  // subscriptions must be dropped. The Connection is destroyed on return.
  virtual void OnClose(Connection& conn) {}
};

// One accepted connection. Loop-thread only.
class Connection {
 public:
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  std::uint64_t id() const { return id_; }
  int fd() const { return fd_; }

  // Queues one frame. Droppable frames are skipped under backpressure
  // (returns false); a non-droppable frame that cannot be buffered or a
  // send fault closes the connection. Returns true when queued.
  bool SendFrame(MsgType type, std::uint32_t request_id,
                 const std::vector<std::uint8_t>& payload,
                 std::uint16_t flags = 0, bool droppable = false);

  // Requests teardown: the connection is destroyed after the current
  // dispatch returns (or by a posted loop task when called outside one).
  void Close();
  bool closing() const { return closing_; }

  std::size_t OutboundBytes() const { return out_bytes_; }

  // Cork/uncork: while corked, SendFrame only queues — the flush (one
  // writev over every queued frame) happens at Uncork. The daemon corks
  // around multi-frame work (subscription pumps, batch acks) so a burst
  // drains in one syscall instead of one write per frame.
  void Cork() { ++cork_depth_; }
  void Uncork();

  // Arbitrary per-connection state owned by the handler (e.g. the daemon's
  // subscription table), destroyed with the connection.
  void set_user_data(std::shared_ptr<void> data) {
    user_data_ = std::move(data);
  }
  const std::shared_ptr<void>& user_data() const { return user_data_; }

  // Idle-reaper exemption. A connection holding server-side sessions
  // (push subscriptions, continuous queries) is intentionally quiet on
  // the inbound side — it must not be reaped as idle while those
  // sessions are active. The daemon sets this on subscribe/CQ-register
  // and clears it when the last session on the connection ends.
  void set_idle_exempt(bool exempt) { idle_exempt_ = exempt; }
  bool idle_exempt() const { return idle_exempt_; }

 private:
  friend class Server;
  Connection(Server& server, std::uint64_t id, int fd)
      : server_(server), id_(id), fd_(fd) {}

  Server& server_;
  std::uint64_t id_;
  int fd_;
  FrameParser parser_;
  // Queue of encoded frames, drained by one writev per flush (gathered
  // iovecs, capped at kMaxIov entries per syscall). out_pos_ is the sent
  // prefix of the front frame after a partial write; out_bytes_ is the
  // total unsent byte count (the backpressure measure).
  std::deque<std::vector<std::uint8_t>> outbound_;
  std::size_t out_pos_ = 0;
  std::size_t out_bytes_ = 0;
  int cork_depth_ = 0;
  bool want_write_ = false;
  bool closing_ = false;
  bool idle_exempt_ = false;
  TimeNs last_activity_ = 0;
  std::shared_ptr<void> user_data_;
};

class Server {
 public:
  // `loop` must be a real-time loop (fd watching is unavailable under an
  // auto-advancing SimClock) and outlive the server.
  Server(EventLoop& loop, ServerConfig config, FrameHandler& handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds + listens and registers the accept fd with the loop. Call before
  // running the loop (or from the loop thread).
  Status Start();

  // Closes the listener and every connection. Call with the loop not
  // running (the daemon stops its loop thread first).
  void Stop();

  // Port actually bound (resolves config port 0). Valid after Start().
  std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

  std::size_t ConnectionCount() const {
    return conn_count_.load(std::memory_order_acquire);
  }

  // Loop-thread only: the live connection with this id, or null.
  Connection* FindConnection(std::uint64_t id);

  // Injector consulted at kNetSend/kNetRecv/kConnDrop (not owned; null
  // detaches). Topic filter is the frame's MsgTypeName.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }

  EventLoop& loop() { return loop_; }
  const ServerConfig& config() const { return config_; }

 private:
  friend class Connection;

  void OnAcceptable();
  void OnConnEvent(std::uint64_t conn_id, std::uint32_t events);
  void ReadConn(Connection& conn);
  void FlushConn(Connection& conn);
  void DestroyConn(std::uint64_t conn_id);
  void SweepIdle(TimeNs now);
  std::optional<FaultAction> EvaluateFault(FaultSite site,
                                           std::string_view label);

  EventLoop& loop_;
  ServerConfig config_;
  FrameHandler& handler_;
  int listen_fd_ = -1;
  std::atomic<std::uint16_t> port_{0};
  TimerId idle_timer_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::atomic<std::size_t> conn_count_{0};
  std::atomic<FaultInjector*> fault_{nullptr};
};

// --- shared socket helpers (also used by the client) ---

// Sets O_NONBLOCK; returns false on fcntl failure.
bool SetNonBlocking(int fd);

// Creates a non-blocking IPv4 listener bound to address:port (port 0 picks
// one). On success returns the fd and stores the bound port.
Expected<int> TcpListen(const std::string& address, std::uint16_t port,
                        std::uint16_t& bound_port);

}  // namespace apollo::net
