#include "net/remote_query.h"

#include <thread>
#include <utility>

#include "aqe/remote.h"
#include "obs/trace.h"
#include "pubsub/telemetry.h"

namespace apollo::net {

RemoteQueryEngine::RemoteQueryEngine(std::vector<RemoteNode> nodes,
                                     RemoteQueryOptions options)
    : nodes_(std::move(nodes)), options_(options) {}

Expected<aqe::ResultSet> RemoteQueryEngine::Execute(const std::string& sql) {
  TRACE_SPAN("net.remote_query", sql);
  struct NodeReply {
    Expected<ResultMsg> reply{Error(ErrorCode::kUnavailable, "not run")};
  };
  std::vector<NodeReply> replies(nodes_.size());
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    threads.emplace_back([this, i, &sql, &replies] {
      ClientConfig config;
      config.host = nodes_[i].host;
      config.port = nodes_[i].port;
      config.client_name = "remote-query:" + nodes_[i].name;
      config.request_timeout = options_.node_deadline;
      config.connect_timeout = options_.connect_timeout;
      config.connect_retry = options_.connect_retry;
      // The whole scatter leg — retries included — stays inside the node
      // deadline so one dead node cannot stretch the gather.
      config.connect_retry.deadline = options_.node_deadline;
      ApolloClient client(std::move(config));
      client.AttachFaultInjector(fault_);
      replies[i].reply = client.Query(sql, /*partial=*/true);
    });
  }
  for (std::thread& t : threads) t.join();

  auto& telemetry = GlobalTelemetry();
  Clock& clock = RealClock::Instance();
  const TimeNs now = clock.Now();
  aqe::ResultSet merged;
  std::vector<NodeOutcome> outcomes(nodes_.size());
  bool any_fresh = false;
  Error first_error(ErrorCode::kUnavailable, "no nodes configured");
  bool have_error = false;

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeOutcome& outcome = outcomes[i];
    outcome.node = nodes_[i].name;
    auto& reply = replies[i].reply;
    const auto cache_key = std::make_pair(nodes_[i].name, sql);
    if (reply.ok()) {
      Status status = aqe::MergeResult(merged, reply->result);
      if (!status.ok()) return Error(status.code(), status.message());
      outcome.ok = true;
      outcome.served_tables = reply->served_tables;
      any_fresh = true;
      cache_[cache_key] = CachedResult{reply->result, now};
      continue;
    }
    outcome.error = reply.error().ToString();
    if (!have_error) {
      first_error = reply.error();
      have_error = true;
    }
    telemetry.net_node_timeouts.Inc();
    auto cached = cache_.find(cache_key);
    if (cached != cache_.end()) {
      // Last-known-good fallback: stale rows beat a failed query.
      aqe::ResultSet stale = cached->second.result;
      aqe::MarkDegraded(stale, now - cached->second.fetched_at);
      Status status = aqe::MergeResult(merged, stale);
      if (!status.ok()) return Error(status.code(), status.message());
      outcome.from_cache = true;
      telemetry.net_degraded_fallbacks.Inc();
    } else {
      // Nothing to serve for this node; the merged answer is degraded.
      merged.degraded = true;
    }
  }
  last_outcomes_ = std::move(outcomes);

  // Only when every node failed and none had a cached answer does the
  // query itself fail (e.g. a parse error rejected everywhere).
  if (!any_fresh && merged.rows.empty() && merged.columns.empty() &&
      (have_error || nodes_.empty())) {
    return first_error;
  }
  return merged;
}

std::vector<NodeOutcome> RemoteQueryEngine::LastOutcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_outcomes_;
}

}  // namespace apollo::net
