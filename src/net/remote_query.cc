#include "net/remote_query.h"

#include <algorithm>
#include <set>
#include <thread>
#include <utility>

#include "aqe/parser.h"
#include "aqe/query_builder.h"
#include "aqe/remote.h"
#include "cluster/placement.h"
#include "obs/trace.h"
#include "pubsub/telemetry.h"

namespace apollo::net {

RemoteQueryEngine::RemoteQueryEngine(std::vector<RemoteNode> nodes,
                                     RemoteQueryOptions options)
    : nodes_(std::move(nodes)), options_(options) {}

Expected<ResultMsg> RemoteQueryEngine::QueryNode(std::size_t node,
                                                 const std::string& sql,
                                                 bool partial) {
  ClientConfig config;
  config.host = nodes_[node].host;
  config.port = nodes_[node].port;
  config.client_name = "remote-query:" + nodes_[node].name;
  config.request_timeout = options_.node_deadline;
  config.connect_timeout = options_.connect_timeout;
  config.connect_retry = options_.connect_retry;
  // The whole scatter leg — retries included — stays inside the node
  // deadline so one dead node cannot stretch the gather.
  config.connect_retry.deadline = options_.node_deadline;
  ApolloClient client(std::move(config));
  client.AttachFaultInjector(fault_);
  return client.Query(sql, partial);
}

Expected<aqe::ResultSet> RemoteQueryEngine::Execute(const std::string& sql) {
  TRACE_SPAN("net.remote_query", sql);
  if (options_.cluster_mode) return ExecuteCluster(sql);
  return ExecuteBroadcast(sql);
}

Expected<aqe::ResultSet> RemoteQueryEngine::ExecuteBroadcast(
    const std::string& sql) {
  struct NodeReply {
    Expected<ResultMsg> reply{Error(ErrorCode::kUnavailable, "not run")};
  };
  std::vector<NodeReply> replies(nodes_.size());
  std::vector<std::thread> threads;
  threads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    threads.emplace_back([this, i, &sql, &replies] {
      replies[i].reply = QueryNode(i, sql, /*partial=*/true);
    });
  }
  for (std::thread& t : threads) t.join();

  auto& telemetry = GlobalTelemetry();
  Clock& clock = RealClock::Instance();
  const TimeNs now = clock.Now();
  aqe::ResultSet merged;
  std::vector<NodeOutcome> outcomes(nodes_.size());
  bool any_fresh = false;
  Error first_error(ErrorCode::kUnavailable, "no nodes configured");
  bool have_error = false;

  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeOutcome& outcome = outcomes[i];
    outcome.node = nodes_[i].name;
    auto& reply = replies[i].reply;
    const auto cache_key = std::make_pair(nodes_[i].name, sql);
    if (reply.ok()) {
      Status status = aqe::MergeResult(merged, reply->result);
      if (!status.ok()) return Error(status.code(), status.message());
      outcome.ok = true;
      outcome.served_tables = reply->served_tables;
      any_fresh = true;
      cache_[cache_key] = CachedResult{reply->result, now};
      continue;
    }
    outcome.error = reply.error().ToString();
    if (!have_error) {
      first_error = reply.error();
      have_error = true;
    }
    telemetry.net_node_timeouts.Inc();
    auto cached = cache_.find(cache_key);
    if (cached != cache_.end()) {
      // Last-known-good fallback: stale rows beat a failed query.
      aqe::ResultSet stale = cached->second.result;
      aqe::MarkDegraded(stale, now - cached->second.fetched_at);
      Status status = aqe::MergeResult(merged, stale);
      if (!status.ok()) return Error(status.code(), status.message());
      outcome.from_cache = true;
      telemetry.net_degraded_fallbacks.Inc();
    } else {
      // Nothing to serve for this node; the merged answer is degraded.
      merged.degraded = true;
    }
  }
  last_outcomes_ = std::move(outcomes);

  // Only when every node failed and none had a cached answer does the
  // query itself fail (e.g. a parse error rejected everywhere).
  if (!any_fresh && merged.rows.empty() && merged.columns.empty() &&
      (have_error || nodes_.empty())) {
    return first_error;
  }
  return merged;
}

bool RemoteQueryEngine::RefreshMap() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    ClientConfig config;
    config.host = nodes_[i].host;
    config.port = nodes_[i].port;
    config.client_name = "remote-query-map:" + nodes_[i].name;
    config.request_timeout = options_.connect_timeout;
    config.connect_timeout = options_.connect_timeout;
    config.connect_retry.max_attempts = 1;
    ApolloClient client(std::move(config));
    client.AttachFaultInjector(fault_);
    auto map = client.FetchClusterMap();
    if (!map.ok()) continue;
    std::lock_guard<std::mutex> lock(mu_);
    map_ = std::move(*map);
    return true;
  }
  return false;
}

Expected<aqe::ResultSet> RemoteQueryEngine::ExecuteCluster(
    const std::string& sql) {
  RefreshMap();  // stale map (or none) degrades to the broadcast path
  std::optional<cluster::ClusterMap> map;
  {
    std::lock_guard<std::mutex> lock(mu_);
    map = map_;
  }
  if (!map.has_value()) return ExecuteBroadcast(sql);

  std::string_view bare = sql;
  bool analyze = false;
  const bool is_explain = aqe::Executor::StripExplainPrefix(sql, bare, analyze);
  auto parsed = aqe::Parse(std::string(bare));
  if (!parsed.ok()) return parsed.error();

  // Placement ring over the CONFIGURED member names (the same walk the
  // daemons use), restricted to live members for primary selection.
  std::vector<std::string> member_names;
  for (const cluster::Member& m : map->members) member_names.push_back(m.name);
  cluster::PlacementRing ring(member_names, options_.vnodes);

  // Distinct tables -> ordered candidate replicas.
  std::map<std::string, std::vector<std::string>> candidates;
  for (const aqe::Select& sel : parsed->selects) {
    if (candidates.count(sel.table)) continue;
    std::vector<const cluster::Member*> replicas =
        cluster::AliveReplicasFor(ring, *map, sel.table);
    std::vector<std::string> names;
    for (const cluster::Member* m : replicas) {
      // Only members we can actually dial.
      if (std::any_of(nodes_.begin(), nodes_.end(),
                      [&](const RemoteNode& n) { return n.name == m->name; }))
        names.push_back(m->name);
    }
    if (names.empty()) {
      // No live replica known: try every configured node in order.
      for (const RemoteNode& n : nodes_) names.push_back(n.name);
    }
    candidates[sel.table] = std::move(names);
  }

  auto node_index = [this](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].name == name) return i;
    }
    return nodes_.size();
  };
  auto subquery_for = [&](const std::set<std::string>& tables) {
    std::string text = aqe::ToString(aqe::FilterQuery(
        *parsed, [&](const std::string& t) { return tables.count(t) > 0; }));
    if (is_explain) text = (analyze ? "EXPLAIN ANALYZE " : "EXPLAIN ") + text;
    return text;
  };

  auto& telemetry = GlobalTelemetry();
  Clock& clock = RealClock::Instance();
  aqe::ResultSet merged;
  std::vector<NodeOutcome> outcomes(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    outcomes[i].node = nodes_[i].name;
  }
  std::set<std::string> remaining;  // tables still unanswered
  for (const auto& [table, cands] : candidates) remaining.insert(table);
  std::set<std::string> failed_nodes;
  bool any_fresh = false;
  Error first_error(ErrorCode::kUnavailable, "no live replica answered");

  // Two bounded rounds: the primary assignment, then one re-route of the
  // failed nodes' tables to their next surviving replica.
  for (int round = 0; round < 2 && !remaining.empty(); ++round) {
    std::map<std::string, std::set<std::string>> assignment;  // node->tables
    for (const std::string& table : remaining) {
      for (const std::string& cand : candidates[table]) {
        if (failed_nodes.count(cand)) continue;
        assignment[cand].insert(table);
        break;
      }
    }
    if (assignment.empty()) break;
    struct Leg {
      std::size_t node;
      std::string sub_sql;
      std::set<std::string> tables;
      Expected<ResultMsg> reply{Error(ErrorCode::kUnavailable, "not run")};
    };
    std::vector<Leg> legs;
    for (auto& [name, tables] : assignment) {
      const std::size_t idx = node_index(name);
      if (idx >= nodes_.size()) continue;
      legs.push_back(Leg{idx, subquery_for(tables), tables});
    }
    std::vector<std::thread> threads;
    threads.reserve(legs.size());
    for (Leg& leg : legs) {
      threads.emplace_back([this, &leg] {
        leg.reply = QueryNode(leg.node, leg.sub_sql, /*partial=*/false);
      });
    }
    for (std::thread& t : threads) t.join();
    const TimeNs now = clock.Now();
    for (Leg& leg : legs) {
      NodeOutcome& outcome = outcomes[leg.node];
      if (leg.reply.ok()) {
        Status status = aqe::MergeResult(merged, leg.reply->result);
        if (!status.ok()) return Error(status.code(), status.message());
        outcome.ok = true;
        outcome.served_tables.insert(outcome.served_tables.end(),
                                     leg.tables.begin(), leg.tables.end());
        any_fresh = true;
        for (const std::string& t : leg.tables) remaining.erase(t);
        std::lock_guard<std::mutex> lock(mu_);
        cache_[{nodes_[leg.node].name, leg.sub_sql}] =
            CachedResult{leg.reply->result, now};
        continue;
      }
      outcome.error = leg.reply.error().ToString();
      first_error = leg.reply.error();
      failed_nodes.insert(nodes_[leg.node].name);
      telemetry.net_node_timeouts.Inc();
    }
  }

  // Whatever is still unanswered goes to the last-known-good cache,
  // keyed by the PRIMARY assignment (the stable key in a calm cluster).
  if (!remaining.empty()) {
    const TimeNs now = clock.Now();
    std::map<std::string, std::set<std::string>> assignment;
    for (const std::string& table : remaining) {
      if (!candidates[table].empty()) {
        assignment[candidates[table].front()].insert(table);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    bool all_cached = !assignment.empty();
    for (auto& [name, tables] : assignment) {
      auto cached = cache_.find({name, subquery_for(tables)});
      if (cached == cache_.end()) {
        all_cached = false;
        continue;
      }
      aqe::ResultSet stale = cached->second.result;
      aqe::MarkDegraded(stale, now - cached->second.fetched_at);
      Status status = aqe::MergeResult(merged, stale);
      if (!status.ok()) return Error(status.code(), status.message());
      const std::size_t idx = node_index(name);
      if (idx < nodes_.size()) outcomes[idx].from_cache = true;
      telemetry.net_degraded_fallbacks.Inc();
    }
    if (!all_cached) merged.degraded = true;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    last_outcomes_ = std::move(outcomes);
  }
  if (!any_fresh && merged.rows.empty() && merged.columns.empty() &&
      !candidates.empty()) {
    return first_error;
  }
  return merged;
}

std::vector<NodeOutcome> RemoteQueryEngine::LastOutcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_outcomes_;
}

std::optional<cluster::ClusterMap> RemoteQueryEngine::LastMap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

}  // namespace apollo::net
