// ClusterController: the daemon-side brain of the replicated cluster.
//
// One controller per clustered apollod. It owns the placement ring, the
// membership table, and one pair of ApolloClients per peer, and it splits
// the cluster work across exactly two threads:
//
//   probe thread (owned here)    loop thread (the daemon's EventLoop)
//   -------------------------    ----------------------------------
//   heartbeat round every        HandleHeartbeat / HandleReplicate /
//   heartbeat_interval;          HandleResyncPull for inbound peer
//   suspect/dead Tick();         frames; RouteBatch for client
//   WAL-tail resync when         publishes (replicate to secondaries
//   (re)joining                  or forward to the primary)
//
// Each thread talks to a peer through its OWN client (`probe` vs `route`),
// so the single-threaded ApolloClient contract holds without a lock that
// would let a slow probe stall the ingest path.
//
// Write path (RouteBatch, one publish run): the run's replicas are the
// ring walk over alive-or-suspect members. If self is the primary it
// evaluates kPublish faults per entry (the primary's dice decide for
// every replica — re-rolling on a secondary would fork the id
// sequences), sends the surviving entries to each secondary as a
// kReplicate carrying expected_base = the primary's pre-append NextId,
// and appends locally only after counting acks: the run is acked to the
// client iff 1 + applied secondaries >= write_quorum. A kAhead verdict
// means a secondary has entries the primary lacks — the primary is the
// stale one (it likely just rejoined), so it aborts the run, demotes
// itself to kJoining and resyncs instead of overwriting history. If self
// is NOT the primary the run is forwarded there with kFlagForwarded; a
// forwarded run is never forwarded again, so routing disagreement during
// a map change costs at most one extra hop before the sender retries
// with a fresher map.
//
// A quorum-failed run is NACKed without a local append, but a secondary
// may already have applied it; that secondary then answers kAhead until
// the primary resyncs the entries back. Unacked writes may thus become
// visible — the fabric is at-least-once, never lossy for ACKED samples,
// which is the invariant the chaos test checks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.h"
#include "cluster/placement.h"
#include "common/clock.h"
#include "common/expected.h"
#include "net/client.h"
#include "net/messages.h"
#include "pubsub/broker.h"

namespace apollo::net {

struct ClusterPeer {
  std::string name;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClusterNodeConfig {
  bool enabled = false;
  // This node's name; must appear in `members`.
  std::string self;
  // Full configured cluster, including self.
  std::vector<ClusterPeer> members;
  std::uint32_t replication_factor = 2;
  // Replicas (counting the primary) that must hold a run before it is
  // acked. 1 = primary-only (async replication).
  std::uint32_t write_quorum = 2;
  std::uint32_t vnodes = 64;
  TimeNs heartbeat_interval = Millis(100);
  // Silence thresholds; must exceed peer_timeout so one in-flight
  // replicate round-trip on the peer's loop thread cannot by itself make
  // the peer look suspect.
  TimeNs suspect_after = Millis(500);
  TimeNs dead_after = Millis(1200);
  // Per round-trip deadline for every peer client (probe and route).
  TimeNs peer_timeout = Millis(250);
  // Entries per kResyncPull chunk.
  std::uint32_t resync_chunk = 2048;
};

class ClusterController {
 public:
  // Called (from the probe thread or the loop thread) whenever the
  // membership map's version changes; the daemon posts the broadcast to
  // its loop.
  using MapPushFn = std::function<void(const cluster::ClusterMap&)>;

  ClusterController(Broker& broker, ClusterNodeConfig config);
  ~ClusterController();

  ClusterController(const ClusterController&) = delete;
  ClusterController& operator=(const ClusterController&) = delete;

  // Starts the probe thread. The first resync (trivial on a cold
  // cluster) promotes self from kJoining to kAlive.
  Status Start(MapPushFn push);
  void Stop();

  cluster::ClusterMap Snapshot() const { return membership_.Snapshot(); }
  std::uint64_t generation() const { return generation_; }
  const ClusterNodeConfig& config() const { return config_; }

  // --- loop-thread entry points (called by the daemon's frame handlers)

  void HandleHeartbeat(const HeartbeatMsg& msg, HeartbeatAckMsg& ack);
  void HandleReplicate(const ReplicateMsg& msg, ReplicateAckMsg& ack);
  Status HandleResyncPull(const ResyncPullMsg& msg, ResyncChunkMsg& chunk);

  // Routes every run of `msg` (replicate-and-append when self is the
  // primary, forward otherwise) and fills `ack` with the per-sample
  // outcome. `forwarded` runs are served as primary or failed — never
  // re-forwarded.
  void RouteBatch(const PublishBatchMsg& msg, bool forwarded,
                  PublishBatchAckMsg& ack);

 private:
  struct Peer {
    ClusterPeer info;
    std::unique_ptr<ApolloClient> probe;  // probe-thread only
    std::unique_ptr<ApolloClient> route;  // daemon route-thread only
  };

  void ProbeLoop();
  // One heartbeat round over every peer; feeds the membership table.
  void ProbeRound(TimeNs now);
  // Catch-up: pulls WAL tails for every topic placed on self from peer
  // replicas. Returns true when every placed topic reached its source's
  // high water (self may then serve as kAlive).
  bool DoResync();
  // Pulls `topic` from `source` until its high water; applies chunks
  // preserving ids. Returns false on any transport/apply error.
  bool ResyncTopicFrom(Peer& source, const std::string& topic);
  // Pushes the current map through `push_` when the version moved.
  void MaybePushMap();
  // Mirrors membership counters into GlobalTelemetry (delta-based).
  void SyncCounters();
  // Replica members for `topic` under `map` (alive-walk). Order is ring
  // order: [0] is the primary.
  std::vector<const cluster::Member*> Replicas(const cluster::ClusterMap& map,
                                               const std::string& topic) const;
  // Marks every not-yet-marked sample of the run failed.
  static void FailRun(PublishBatchAckMsg& ack, std::size_t base,
                      std::size_t n, ErrorCode code, const std::string& error);

  Broker& broker_;
  ClusterNodeConfig config_;
  std::uint64_t generation_ = 0;  // wall-clock process-start stamp
  cluster::PlacementRing ring_;
  cluster::MembershipTable membership_;
  std::map<std::string, Peer> peers_;  // by name, excluding self

  MapPushFn push_;
  std::mutex push_mu_;
  std::uint64_t last_pushed_version_ = 0;

  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool stop_ = false;
  bool running_ = false;
  // Set on kBehind/kAhead verdicts and at start; cleared by a complete
  // resync.
  std::atomic<bool> resync_needed_{true};

  // Last membership counter values mirrored into telemetry.
  std::uint64_t seen_suspects_ = 0;
  std::uint64_t seen_deaths_ = 0;
  std::uint64_t seen_recoveries_ = 0;
};

// Builds a MembershipTable member list from the configured peers.
std::vector<cluster::Member> MembersFromPeers(
    const std::vector<ClusterPeer>& peers);

}  // namespace apollo::net
