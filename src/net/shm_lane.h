// Shared-memory ingest lane: a single-producer single-consumer ring of
// fixed-size sample slots in a POSIX shm segment, bypassing the TCP hot
// path for same-host producers.
//
// Ownership protocol: the *client* creates the segment (shm_open with
// O_CREAT|O_EXCL so a stale name cannot be hijacked), initialises the
// header, and offers it to the daemon with a kShmAttach frame carrying the
// segment name, slot count, and the fixed topic table (slot.topic_id is an
// index into that table). The daemon validates magic/version/slot_count,
// maps the segment, and acks; on refusal (or a kShmAttach fault) the client
// falls back to TCP batching. The client unlinks the segment on teardown,
// so a crashed producer leaves at most one name to reap.
//
// Memory ordering is the classic SPSC pair: the producer publishes a slot
// with a release store of head, the consumer acquires head before reading
// slots and releases tail after consuming; each side only ever stores its
// own index.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/expected.h"

namespace apollo::net {

inline constexpr std::uint32_t kShmLaneMagic = 0x4d535041u;  // "APSM" LE
inline constexpr std::uint32_t kShmLaneVersion = 1;
inline constexpr std::uint32_t kShmLaneMaxSlots = 1u << 20;

// One published sample. 32 bytes, trivially copyable — written in place in
// the shared ring.
struct ShmSlot {
  std::int64_t entry_ts = 0;   // ingest timestamp (TimeNs)
  std::int64_t sample_ts = 0;  // sample's own timestamp
  double value = 0.0;
  std::uint32_t topic_id = 0;  // index into the attach-time topic table
  std::uint8_t provenance = 0;
  std::uint8_t pad[3] = {};
};
static_assert(sizeof(ShmSlot) == 32, "slot layout is part of the protocol");

// Segment layout: three cache lines of header (magic block, producer head,
// consumer tail) followed by slot_count slots.
struct ShmLaneHeader {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t slot_count = 0;  // power of two
  std::uint32_t reserved = 0;
  alignas(64) std::atomic<std::uint64_t> head;  // next write (producer-owned)
  alignas(64) std::atomic<std::uint64_t> tail;  // next read (consumer-owned)
};
inline constexpr std::size_t kShmLaneHeaderBytes = 192;
static_assert(sizeof(ShmLaneHeader) <= kShmLaneHeaderBytes);

inline std::size_t ShmLaneBytes(std::uint32_t slot_count) {
  return kShmLaneHeaderBytes + sizeof(ShmSlot) * slot_count;
}

// Client side: creates + owns the segment (unlinked on destruction).
class ShmLaneProducer {
 public:
  // `name` must be a valid shm name ("/apollo-..."); slot_count a power of
  // two in [2, kShmLaneMaxSlots].
  static Expected<std::unique_ptr<ShmLaneProducer>> Create(
      const std::string& name, std::uint32_t slot_count);
  ~ShmLaneProducer();

  ShmLaneProducer(const ShmLaneProducer&) = delete;
  ShmLaneProducer& operator=(const ShmLaneProducer&) = delete;

  // Returns false when the ring is full (consumer behind) — the caller
  // falls back to the TCP batch path for this sample.
  bool TryPush(const ShmSlot& slot);

  const std::string& name() const { return name_; }
  std::uint32_t slot_count() const { return slots_; }

 private:
  ShmLaneProducer(std::string name, int fd, void* map, std::uint32_t slots)
      : name_(std::move(name)), fd_(fd), map_(map), slots_(slots) {}

  ShmLaneHeader* header() { return static_cast<ShmLaneHeader*>(map_); }
  ShmSlot* slot_array() {
    return reinterpret_cast<ShmSlot*>(static_cast<std::uint8_t*>(map_) +
                                      kShmLaneHeaderBytes);
  }

  std::string name_;
  int fd_ = -1;
  void* map_ = nullptr;
  std::uint32_t slots_ = 0;
};

// Daemon side: maps an offered segment read-write (tail is ours to store);
// never unlinks — the producer owns the name.
class ShmLaneConsumer {
 public:
  static Expected<std::unique_ptr<ShmLaneConsumer>> Attach(
      const std::string& name, std::uint32_t expected_slots);
  ~ShmLaneConsumer();

  ShmLaneConsumer(const ShmLaneConsumer&) = delete;
  ShmLaneConsumer& operator=(const ShmLaneConsumer&) = delete;

  // Appends up to `max` pending slots to `out` (not cleared) and advances
  // tail. Returns the number drained.
  std::size_t Drain(std::vector<ShmSlot>& out, std::size_t max);

  std::uint32_t slot_count() const { return slots_; }

 private:
  ShmLaneConsumer(int fd, void* map, std::uint32_t slots)
      : fd_(fd), map_(map), slots_(slots) {}

  ShmLaneHeader* header() { return static_cast<ShmLaneHeader*>(map_); }
  const ShmSlot* slot_array() const {
    return reinterpret_cast<const ShmSlot*>(
        static_cast<const std::uint8_t*>(map_) + kShmLaneHeaderBytes);
  }

  int fd_ = -1;
  void* map_ = nullptr;
  std::uint32_t slots_ = 0;
};

// Orphan reaper: client lanes are named "/apollo-lane-<pid>-<seq>" and the
// producer unlinks on clean teardown, but a SIGKILLed producer leaks the
// segment until reboot. Scans /dev/shm for lane names whose embedded pid
// no longer exists (kill(pid, 0) == ESRCH) and shm_unlinks them. Attached
// consumers keep their mappings valid (unlink only removes the name).
// Returns the number of segments reaped; bumps net_shm_orphans_reaped.
std::size_t ReapOrphanShmLanes();

// Parses the producer pid out of a lane name ("/apollo-lane-<pid>-<seq>"
// or the same without the leading slash). Returns -1 on non-lane names.
int ShmLaneOwnerPid(const std::string& name);

}  // namespace apollo::net
