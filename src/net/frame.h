// Wire framing for Apollo's network fabric.
//
// Every message on a fabric connection is one length-prefixed, CRC32C-
// checksummed frame (all integers little-endian, same byte conventions as
// pubsub/wal_format):
//
//   offset  field
//   0       u32 magic       "APLO" (0x4F4C5041)
//   4       u8  version     protocol version (currently 1)
//   5       u8  type        MsgType
//   6       u16 flags       per-type bits (e.g. kFlagPartial on kQuery)
//   8       u32 length      payload byte count (<= kMaxFrameLen)
//   12      u32 request_id  request/response correlation (0 = push)
//   16      u32 crc         CRC32C(header[0..15]) chained over payload —
//                           one checksum validates header and payload
//   20      payload[length]
//
// FrameParser reassembles frames from an arbitrary byte stream: it
// tolerates frames split across reads and rejects — with a permanent error
// state, since a byte stream cannot resynchronize — bad magic, unknown
// versions, oversized lengths, and CRC mismatches.
#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace apollo::net {

inline constexpr std::uint32_t kMagic = 0x4F4C5041u;  // "APLO"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 20;
// Upper bound on a frame payload: rejects absurd lengths produced by
// corruption (or a hostile peer) before they can drive a huge allocation.
inline constexpr std::uint32_t kMaxFrameLen = 8u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,    // client -> server: version handshake
  kHelloAck,     // server -> client
  kPing,         // either direction; resets the idle timer
  kPong,
  kPublish,      // client -> server: append one sample to a topic
  kPublishAck,
  kSubscribe,    // client -> server: start pushed deliveries for a topic
  kSubscribeAck,
  kDeliver,      // server -> client: unsolicited entries (request_id 0)
  kFetchWindow,  // client -> server: cursor read of a topic's window
  kWindow,
  kQuery,        // client -> server: AQE query text (EXPLAIN supported)
  kResult,
  kListTopics,   // client -> server: topics served by this daemon
  kTopicList,
  kMetrics,      // client -> server: Prometheus text exposition scrape
  kMetricsText,
  kError,        // server -> client: request failed
  kPublishBatch,     // client -> server: N samples, one frame CRC32C
  kPublishBatchAck,  // server -> client: cumulative ack + error bitmap
  kShmAttach,        // client -> server: shared-memory ingest lane offer
  kShmAttachAck,     // server -> client: accepted or fall back to TCP
  kHeartbeat,        // daemon -> daemon: membership probe (name, gen, state)
  kHeartbeatAck,     // daemon -> daemon: prober learns the peer's state
  kGetClusterMap,    // client -> server: request the current cluster map
  kClusterMap,       // server -> client: map reply, or push on change
                     // (request_id 0)
  kReplicate,        // primary -> secondary: mirror a publish run
  kReplicateAck,     // secondary -> primary: applied, or lag/ahead verdict
  kResyncPull,       // joining node -> peer: WAL-tail catch-up request
  kResyncChunk,      // peer -> joining node: entries [from_id, high_water)
  kCQRegister,       // client -> server: register a continuous query
  kCQRegisterAck,    // server -> client: cq id + current epoch/seq
  kCQCancel,         // client -> server: cancel a continuous query
  kCQCancelAck,      // server -> client
  kCQUpdate,         // server -> client: incremental result push
                     // (request_id 0)
};

const char* MsgTypeName(MsgType type);

// kQuery flag: execute only the UNION branches whose topics this daemon
// serves instead of failing on the first unknown topic (scatter-gather).
inline constexpr std::uint16_t kFlagPartial = 1u << 0;

// kPublish/kPublishBatch flag: this publish was forwarded by another
// cluster node. The receiver must serve it as the topic's primary or
// reject it — never forward again (caps any routing disagreement between
// two nodes' maps at one hop instead of a forwarding loop).
inline constexpr std::uint16_t kFlagForwarded = 1u << 1;

struct Frame {
  MsgType type = MsgType::kError;
  std::uint16_t flags = 0;
  std::uint32_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

// Appends one encoded frame to `out`. Returns the encoded size.
std::size_t EncodeFrame(std::vector<std::uint8_t>& out, MsgType type,
                        std::uint32_t request_id,
                        const std::vector<std::uint8_t>& payload,
                        std::uint16_t flags = 0);

// Incremental frame reassembly over a byte stream.
class FrameParser {
 public:
  // Feeds `len` raw bytes. Complete frames become available via Next().
  // Returns false once the stream is corrupt (error() non-empty); further
  // bytes are ignored — the connection must be torn down.
  bool Feed(const std::uint8_t* data, std::size_t len);

  // Pops the next complete frame into `frame`; false when none pending.
  bool Next(Frame& frame);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  // Bytes buffered waiting for the rest of a frame.
  std::size_t PendingBytes() const { return buffer_.size(); }

 private:
  bool Fail(const std::string& reason);

  std::vector<std::uint8_t> buffer_;
  std::deque<Frame> ready_;
  std::string error_;
};

// --- payload (de)serialization primitives ---

// Little-endian appenders; strings are u32-length-prefixed.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void U8(std::uint8_t v) { out_.push_back(v); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);

 private:
  std::vector<std::uint8_t>& out_;
};

// Bounds-checked reader: any out-of-range read latches ok()=false and
// yields zero values, so decoders can parse straight-line and check once.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t U8();
  std::uint16_t U16();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  double F64();
  std::string Str();

  bool ok() const { return ok_; }
  // True when the payload was consumed exactly (decoders use ok() &&
  // AtEnd() to reject trailing garbage).
  bool AtEnd() const { return pos_ == size_; }

 private:
  bool Need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace apollo::net
