// ClusterClient: publish-side failover across a replicated apollod
// cluster.
//
// Wraps one ApolloClient per configured node and keeps a ClusterMap
// (fetched on demand, refreshed from kClusterMap pushes buffered by the
// underlying clients and after any node failure). A publish is sent to
// the topic's current primary when the map knows one — skipping the
// forward hop — and otherwise to each node in turn; any alive node
// accepts the publish and forwards it, so a publish only fails when no
// configured node answers or the cluster NACKs it (write quorum not
// met).
//
// Thread contract: one thread per ClusterClient (same as ApolloClient).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "common/clock.h"
#include "common/expected.h"
#include "net/client.h"
#include "net/cluster_controller.h"

namespace apollo::net {

struct ClusterClientOptions {
  // Per-node client template; host/port/client_name are set per node.
  ClientConfig base;
  // Must match the daemons' placement vnodes for primary-picking to
  // agree with the cluster's own routing.
  std::uint32_t vnodes = 64;
};

class ClusterClient {
 public:
  ClusterClient(std::vector<ClusterPeer> nodes,
                ClusterClientOptions options = {});

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  // Publishes one sample, trying the topic's primary first and failing
  // over across the remaining nodes. Returns the acked entry id.
  Expected<std::uint64_t> Publish(const std::string& topic, TimeNs timestamp,
                                  const Sample& sample);

  // One batch round trip with the same failover order (first run's topic
  // picks the preferred node).
  Expected<PublishBatchAckMsg> PublishBatch(const PublishBatchMsg& msg);

  // Forces a map fetch from the first reachable node.
  Status RefreshMap();
  std::optional<cluster::ClusterMap> map() const { return map_; }

  void AttachFaultInjector(FaultInjector* injector);

  std::size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    ClusterPeer info;
    std::unique_ptr<ApolloClient> client;
  };

  // Node indices to try for `topic`: live replicas in ring order first
  // (when a map is known), then every other node round-robin.
  std::vector<std::size_t> TargetsFor(const std::string& topic);
  // Drains buffered kClusterMap pushes from `node`'s client.
  void AbsorbPushes(Node& node);

  std::vector<Node> nodes_;
  ClusterClientOptions options_;
  std::optional<cluster::ClusterMap> map_;
  std::size_t rr_ = 0;  // round-robin start when the map has no opinion
};

}  // namespace apollo::net
