#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "obs/trace.h"
#include "pubsub/telemetry.h"

namespace apollo::net {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Expected<int> TcpListen(const std::string& address, std::uint16_t port,
                        std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Error(ErrorCode::kIoError,
                 std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error(ErrorCode::kInvalidArgument, "bad bind address: " + address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Error(ErrorCode::kIoError, "bind " + address + ": " + err);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Error(ErrorCode::kIoError, "listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Error(ErrorCode::kIoError, "getsockname: " + err);
  }
  if (!SetNonBlocking(fd)) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Error(ErrorCode::kIoError, "fcntl: " + err);
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

// --- Connection ---

void Connection::Close() {
  if (closing_) return;
  closing_ = true;
  // A close outside a dispatch (e.g. backpressure during the subscription
  // pump) has no OnConnEvent epilogue to reap it — post the teardown.
  Server& server = server_;
  const std::uint64_t id = id_;
  server.loop_.Post([&server, id] { server.DestroyConn(id); });
}

bool Connection::SendFrame(MsgType type, std::uint32_t request_id,
                           const std::vector<std::uint8_t>& payload,
                           std::uint16_t flags, bool droppable) {
  TRACE_SPAN("net.send", MsgTypeName(type));
  if (closing_) return false;
  auto& telemetry = GlobalTelemetry();
  if (auto action =
          server_.EvaluateFault(FaultSite::kNetSend, MsgTypeName(type))) {
    if (action->fails()) {
      telemetry.net_send_failures.Inc();
      if (droppable) return false;
      Close();  // the peer is waiting for this frame; fail loudly
      return false;
    }
    server_.loop().clock().Charge(action->delay_ns);
  }
  if (out_bytes_ + kHeaderSize + payload.size() >
      server_.config().max_outbound_bytes) {
    if (droppable) {
      telemetry.net_backpressure_skips.Inc();
      return false;
    }
    telemetry.net_send_failures.Inc();
    Close();
    return false;
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(kHeaderSize + payload.size());
  EncodeFrame(buf, type, request_id, payload, flags);
  out_bytes_ += buf.size();
  outbound_.push_back(std::move(buf));
  telemetry.net_messages_sent.Inc();
  if (cork_depth_ == 0) server_.FlushConn(*this);
  return true;
}

void Connection::Uncork() {
  if (cork_depth_ > 0 && --cork_depth_ == 0 && !closing_ &&
      !outbound_.empty()) {
    server_.FlushConn(*this);
  }
}

// --- Server ---

Server::Server(EventLoop& loop, ServerConfig config, FrameHandler& handler)
    : loop_(loop), config_(std::move(config)), handler_(handler) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (listen_fd_ >= 0) {
    return Status(ErrorCode::kFailedPrecondition, "server already started");
  }
  // The push path writev()s to sockets whose peer may have vanished
  // between poll and write; without this a dead subscriber would kill
  // the whole daemon with SIGPIPE (writev has no MSG_NOSIGNAL
  // equivalent). EPIPE still surfaces as a write error and closes the
  // connection.
  ::signal(SIGPIPE, SIG_IGN);
  std::uint16_t bound = 0;
  auto fd = TcpListen(config_.bind_address, config_.port, bound);
  if (!fd.ok()) return fd.status();
  listen_fd_ = *fd;
  port_.store(bound, std::memory_order_release);
  if (!loop_.AddFd(listen_fd_, kFdReadable, [this](std::uint32_t) {
        OnAcceptable();
      })) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(ErrorCode::kFailedPrecondition,
                  "loop does not support fd watching");
  }
  if (config_.idle_timeout > 0) {
    const TimeNs sweep = std::max<TimeNs>(config_.idle_timeout / 4, kNsPerMs);
    idle_timer_ = loop_.AddTimer(sweep, [this, sweep](TimeNs now) {
      SweepIdle(now);
      return sweep;
    });
  }
  return Status::Ok();
}

void Server::Stop() {
  if (idle_timer_ != 0) {
    loop_.CancelTimer(idle_timer_);
    idle_timer_ = 0;
  }
  if (listen_fd_ >= 0) {
    loop_.RemoveFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  while (!conns_.empty()) DestroyConn(conns_.begin()->first);
}

void Server::OnAcceptable() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept errors (ECONNABORTED etc.): keep serving
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::unique_ptr<Connection>(new Connection(*this, id, fd));
    conn->last_activity_ = loop_.clock().Now();
    if (!loop_.AddFd(fd, kFdReadable, [this, id](std::uint32_t events) {
          OnConnEvent(id, events);
        })) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_release);
    GlobalTelemetry().net_connections_opened.Inc();
  }
}

Connection* Server::FindConnection(std::uint64_t id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void Server::OnConnEvent(std::uint64_t conn_id, std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (events & kFdError) {
    DestroyConn(conn_id);
    return;
  }
  if (events & kFdWritable) FlushConn(conn);
  if (!conn.closing_ && (events & kFdReadable)) ReadConn(conn);
  if (conn.closing_) DestroyConn(conn_id);
}

void Server::ReadConn(Connection& conn) {
  TRACE_SPAN("net.recv", "server");
  auto& telemetry = GlobalTelemetry();
  std::uint8_t buf[64 * 1024];
  while (!conn.closing_) {
    const ssize_t n = ::read(conn.fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      conn.Close();
      return;
    }
    if (n == 0) {  // peer closed
      conn.Close();
      return;
    }
    conn.last_activity_ = loop_.clock().Now();
    telemetry.net_bytes_received.Inc(static_cast<std::uint64_t>(n));
    if (!conn.parser_.Feed(buf, static_cast<std::size_t>(n))) {
      telemetry.net_protocol_errors.Inc();
      conn.Close();
      return;
    }
    Frame frame;
    while (!conn.closing_ && conn.parser_.Next(frame)) {
      const char* label = MsgTypeName(frame.type);
      if (auto action = EvaluateFault(FaultSite::kConnDrop, label)) {
        if (action->fails()) {
          telemetry.net_conn_drops.Inc();
          conn.Close();
          return;
        }
        loop_.clock().Charge(action->delay_ns);
      }
      if (auto action = EvaluateFault(FaultSite::kNetRecv, label)) {
        if (action->fails()) {
          telemetry.net_recv_drops.Inc();
          continue;  // frame lost in flight
        }
        loop_.clock().Charge(action->delay_ns);
      }
      telemetry.net_messages_received.Inc();
      TRACE_SPAN("net.dispatch", label);
      handler_.OnFrame(conn, frame);
    }
  }
}

void Server::FlushConn(Connection& conn) {
  // One gathered writev per pass over the queue: every pending frame (up
  // to kMaxIov) goes out in a single syscall instead of one write each.
  constexpr std::size_t kMaxIov = 64;
  while (!conn.outbound_.empty()) {
    iovec iov[kMaxIov];
    std::size_t iov_count = 0;
    for (const auto& frame : conn.outbound_) {
      if (iov_count == kMaxIov) break;
      const std::size_t skip = iov_count == 0 ? conn.out_pos_ : 0;
      iov[iov_count].iov_base =
          const_cast<std::uint8_t*>(frame.data()) + skip;
      iov[iov_count].iov_len = frame.size() - skip;
      ++iov_count;
    }
    const ssize_t n =
        ::writev(conn.fd_, iov, static_cast<int>(iov_count));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.Close();
      return;
    }
    conn.last_activity_ = loop_.clock().Now();
    GlobalTelemetry().net_bytes_sent.Inc(static_cast<std::uint64_t>(n));
    conn.out_bytes_ -= static_cast<std::size_t>(n);
    std::size_t sent = static_cast<std::size_t>(n);
    while (sent > 0) {
      const std::size_t remain = conn.outbound_.front().size() - conn.out_pos_;
      if (sent < remain) {
        conn.out_pos_ += sent;
        break;
      }
      sent -= remain;
      conn.out_pos_ = 0;
      conn.outbound_.pop_front();
    }
  }
  if (conn.outbound_.empty()) {
    if (conn.want_write_) {
      conn.want_write_ = false;
      loop_.UpdateFd(conn.fd_, kFdReadable);
    }
  } else if (!conn.want_write_) {
    conn.want_write_ = true;
    loop_.UpdateFd(conn.fd_, kFdReadable | kFdWritable);
  }
}

void Server::DestroyConn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  handler_.OnClose(conn);
  loop_.RemoveFd(conn.fd_);
  ::close(conn.fd_);
  conns_.erase(it);
  conn_count_.store(conns_.size(), std::memory_order_release);
  GlobalTelemetry().net_connections_closed.Inc();
}

void Server::SweepIdle(TimeNs now) {
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    // Connections carrying active server-side sessions (subscriptions,
    // continuous queries) are push-only from the client's perspective;
    // inbound silence is their normal state, not idleness.
    if (conn->idle_exempt_) continue;
    if (now - conn->last_activity_ >= config_.idle_timeout) idle.push_back(id);
  }
  for (std::uint64_t id : idle) {
    GlobalTelemetry().net_idle_closes.Inc();
    DestroyConn(id);
  }
}

std::optional<FaultAction> Server::EvaluateFault(FaultSite site,
                                                std::string_view label) {
  FaultInjector* injector = fault_.load(std::memory_order_acquire);
  if (injector == nullptr) return std::nullopt;
  return injector->Evaluate(site, label);
}

}  // namespace apollo::net
