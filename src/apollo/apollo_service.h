// ApolloService — the public facade wiring every subsystem together.
//
// Owns the pub-sub broker, the SCoRe graph, the event loop that drives
// vertices, the query thread pool, and (optionally) a trained Delphi model
// shared by all vertices. Two operating modes:
//
//  - kRealTime: the event loop runs on a background thread against the
//    monotonic clock. Used by latency/throughput experiments and by any
//    real deployment of the library.
//  - kSimulated: the service owns a SimClock and the caller advances
//    virtual time with RunFor()/RunUntil(); 30 minutes of monitoring
//    complete in milliseconds. Used by workload-replay experiments.
//
// Typical usage (see examples/quickstart.cpp):
//
//   ApolloService apollo(ApolloOptions{});
//   apollo.DeployFact(CapacityRemainingHook(device),
//                     FactDeployment{.controller = "complex_aimd"});
//   apollo.DeployInsight({.topic = "tier_capacity",
//                         .upstream = {...}}, SumInsight());
//   apollo.Start();
//   auto rs = apollo.Query("SELECT MAX(Timestamp), metric FROM ...");
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "adaptive/interval_controller.h"
#include "aqe/executor.h"
#include "coldtier/cold_tier.h"
#include "common/clock.h"
#include "common/expected.h"
#include "concurrent/thread_pool.h"
#include "delphi/delphi_model.h"
#include "common/fault.h"
#include "eventloop/event_loop.h"
#include "net/daemon.h"
#include "pubsub/broker.h"
#include "score/score_graph.h"
#include "score/supervisor.h"

namespace apollo {

struct ApolloOptions {
  enum class Mode { kRealTime, kSimulated };
  Mode mode = Mode::kRealTime;
  std::shared_ptr<const NetworkModel> network;  // null = free network
  std::size_t query_threads = 4;  // 0 = sequential query resolution
  NodeId client_node = kLocalNode;
  // When set, every deployed vertex gets a file-backed Archiver at
  // <archive_dir>/<topic>.log (WAL segments <topic>.log.<seq>.wal);
  // entries evicted from the in-memory window persist there and remain
  // reachable by AQE timestamp-range queries — and replayable with
  // Recover() after a restart. Empty = in-memory archives only when a
  // vertex requests one.
  std::string archive_dir;
  // Durability knobs for file-backed archivers: segment size/rotation,
  // retention cap, fsync policy (see pubsub/archiver.h).
  WalConfig wal;
  // Columnar cold tier: when enabled (and archive_dir is set), every
  // file-backed archiver gets a ColdTier beside it that compacts sealed
  // WAL segments into compressed immutable blocks (coldtier/cold_tier.h).
  // AQE range scans then reach past WAL retention via zone-map-pruned
  // block reads, and WAL retention only deletes compacted segments. In
  // real-time mode a timer on the event loop compacts every
  // coldtier_compact_interval; simulated/manual callers use CompactNow().
  bool coldtier_enabled = false;
  TimeNs coldtier_compact_interval = Seconds(30);
  // Vertex supervision: crash/stall detection with bounded-backoff
  // restarts (a health-check timer on the service's event loop). Disable
  // for experiments that want crashed vertices to stay down.
  bool enable_supervisor = true;
  SupervisorOptions supervisor;
};

// Per-fact deployment knobs (wraps FactVertexConfig + controller choice).
struct FactDeployment {
  std::string controller = "fixed";  // fixed | simple_aimd | complex_aimd
  TimeNs fixed_interval = Seconds(1);
  AimdConfig aimd;
  std::string topic;  // default: hook metric name
  NodeId node = kLocalNode;
  std::size_t queue_capacity = 4096;
  bool publish_only_on_change = true;
  bool use_delphi = false;
  TimeNs prediction_granularity = Seconds(1);
  // Attach an archiver for evicted entries: "inherit" follows the service
  // option (file-backed when archive_dir is set), "memory" forces an
  // in-memory archive, "none" drops evicted entries.
  enum class Archive { kInherit, kMemory, kNone };
  Archive archive = Archive::kInherit;
};

class ApolloService {
 public:
  explicit ApolloService(ApolloOptions options = {});
  ~ApolloService();

  ApolloService(const ApolloService&) = delete;
  ApolloService& operator=(const ApolloService&) = delete;

  // --- deployment ---
  Expected<FactVertex*> DeployFact(MonitorHook hook,
                                   const FactDeployment& deployment = {});
  Expected<InsightVertex*> DeployInsight(InsightVertexConfig config,
                                         InsightFn fn,
                                         bool use_delphi = false);
  Status Undeploy(const std::string& topic);

  // Makes a trained Delphi model available to subsequent deployments with
  // use_delphi/prediction enabled.
  void SetDelphiModel(delphi::DelphiModel model);
  bool HasDelphiModel() const { return delphi_ != nullptr; }
  const delphi::DelphiModel* delphi_model() const { return delphi_.get(); }

  // --- lifecycle ---
  // Real-time mode: starts the event loop thread. Simulated mode: no-op.
  Status Start();
  void Stop();

  // Simulated mode: advances virtual time, firing every due timer.
  Status RunFor(TimeNs duration);
  Status RunUntil(TimeNs end_time);

  // --- durability & recovery ---
  // What a Recover() pass found and rebuilt across the service's archives.
  struct RecoveryReport {
    std::uint64_t topics_recovered = 0;   // streams seeded from an archive
    std::uint64_t topics_skipped = 0;     // stream already had live entries
    std::uint64_t segments_scanned = 0;
    std::uint64_t records_recovered = 0;  // valid records found on disk
    std::uint64_t records_replayed = 0;   // records seeded into windows
    std::uint64_t bytes_truncated = 0;    // torn/corrupt tail bytes cut
    std::uint64_t corrupt_segments = 0;
    std::uint64_t quarantined_segments = 0;
    // Cold tier (zero unless coldtier_enabled): blocks/rows reachable
    // after the manifest load + reconcile pass, and blocks quarantined.
    std::uint64_t cold_blocks = 0;
    std::uint64_t cold_rows = 0;
    std::uint64_t cold_quarantined_blocks = 0;
  };

  // Replays each deployed topic's on-disk archive tail into its (still
  // empty) stream so queries answer immediately after a restart: the ring
  // window, the rolling-aggregate index, and the last-known-good value are
  // rebuilt from the newest `queue_capacity` archived records, with
  // original timestamps (so staleness_ns is honest about data age).
  //
  // Call after deploying vertices and before Start()/first publish; topics
  // whose stream already has entries are skipped, not clobbered. `dir`
  // restricts the pass to archivers rooted there (default: the service's
  // archive_dir). Torn/corrupt segment tails were already truncated or
  // quarantined when each archiver opened; this aggregates those counts.
  Expected<RecoveryReport> Recover(const std::string& dir = "");

  // --- cold tier ---
  // Compacts every topic's sealed WAL segments into cold blocks now (the
  // same pass the real-time background timer runs). Aggregates across
  // topics; stops at the first topic that fails. No-op result when the
  // cold tier is disabled or nothing is sealed.
  Expected<coldtier::CompactResult> CompactNow();
  // The topic's cold tier, or null (not deployed / cold tier disabled).
  coldtier::ColdTier* cold_tier(const std::string& topic) const;

  // --- query surface ---
  // Also accepts EXPLAIN / EXPLAIN ANALYZE prefixes (profile rendered as a
  // one-column result set).
  Expected<aqe::ResultSet> Query(const std::string& query_text);
  Expected<double> LatestValue(const std::string& topic);

  // Query profiler (see aqe::Executor::Explain). `query_text` is the bare
  // SELECT; analyze=true executes it and fills per-vertex timings/rows.
  Expected<aqe::QueryProfile> Explain(const std::string& query_text,
                                      bool analyze = true);

  // Prometheus text exposition of the process-wide metrics registry —
  // every counter/gauge/histogram the fabric, vertices, archivers, and AQE
  // registered, including the TelemetryCounters facade.
  std::string DumpMetrics() const;

  // --- push-style subscriptions ---
  // Delivers every new entry of `topic` to `callback`, polled from the
  // event loop every `poll_interval` (the pull-based subscribe of §3.1;
  // callbacks run on the loop thread in real-time mode). The topic need
  // not exist yet — delivery starts once it does.
  using SubscriptionId = std::uint64_t;
  using SampleCallback = std::function<void(
      const std::string& topic, const StreamEntry<Sample>& entry)>;
  SubscriptionId Subscribe(const std::string& topic, TimeNs poll_interval,
                           SampleCallback callback);
  Status Unsubscribe(SubscriptionId id);
  std::size_t SubscriptionCount() const;

  // --- service self-telemetry ---
  // Aggregate of every deployed vertex's counters: the monitoring
  // service's own cost surface (what Figure 5 samples externally).
  struct ServiceStats {
    std::uint64_t fact_vertices = 0;
    std::uint64_t insight_vertices = 0;
    std::uint64_t hook_calls = 0;
    std::uint64_t published = 0;
    std::uint64_t suppressed = 0;
    std::uint64_t predictions = 0;
    std::int64_t hook_time_ns = 0;
    std::int64_t publish_time_ns = 0;
    std::int64_t predict_time_ns = 0;
    // Fault-tolerance surface.
    std::uint64_t publish_failures = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;

    // Fraction of would-be publishes avoided by change suppression.
    double SuppressionRatio() const {
      const std::uint64_t total = published + suppressed;
      return total == 0 ? 0.0
                        : static_cast<double>(suppressed) /
                              static_cast<double>(total);
    }
  };
  ServiceStats Stats() const;

  // --- network fabric ---
  // Serves this service's broker topics, streams, and queries over the
  // wire protocol on its own real-clock loop thread (see net/daemon.h).
  // config.server.port 0 binds an ephemeral port; the bound port is
  // returned. One daemon per service.
  Expected<std::uint16_t> StartDaemon(net::DaemonConfig config = {});
  void StopDaemon();
  net::ApolloDaemon* daemon() { return daemon_.get(); }

  // --- fault tolerance ---
  // Routes injected faults into the broker and every service-owned
  // archiver (current and future deployments). Pass nullptr to detach.
  void AttachFaultInjector(FaultInjector* injector);
  // Null when enable_supervisor is false.
  VertexSupervisor* supervisor() { return supervisor_.get(); }

  // --- accessors ---
  Broker& broker() { return *broker_; }
  ScoreGraph& graph() { return *graph_; }
  EventLoop& loop() { return *loop_; }
  Clock& clock() { return *clock_; }
  SimClock* sim_clock() { return sim_clock_.get(); }
  const ApolloOptions& options() const { return options_; }

 private:
  ApolloOptions options_;
  std::unique_ptr<SimClock> sim_clock_;  // only in simulated mode
  Clock* clock_ = nullptr;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<ScoreGraph> graph_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<aqe::Executor> executor_;
  std::unique_ptr<delphi::DelphiModel> delphi_;
  std::vector<std::unique_ptr<Archiver<Sample>>> archivers_;
  // Topic -> service-owned archiver, for the recovery pass. Entries are
  // not erased on Undeploy (the archiver outlives the vertex, like
  // archivers_ itself); Recover() consults the live graph for topics.
  std::map<std::string, Archiver<Sample>*> archiver_by_topic_;
  // Cold tiers mirror archivers_: one per file-backed archiver when
  // coldtier_enabled, owned for the service's lifetime. cold_mu_ guards
  // the containers (deploys vs the loop-thread compaction timer), not the
  // tiers themselves (ColdTier is internally synchronized).
  mutable std::mutex cold_mu_;
  std::vector<std::unique_ptr<coldtier::ColdTier>> cold_tiers_;
  std::map<std::string, std::pair<coldtier::ColdTier*, Archiver<Sample>*>>
      cold_by_topic_;
  TimerId compact_timer_ = 0;
  bool compact_timer_armed_ = false;
  // Declared after loop_/graph_ so it is destroyed (timer cancelled)
  // first.
  std::unique_ptr<VertexSupervisor> supervisor_;
  std::unique_ptr<net::ApolloDaemon> daemon_;
  FaultInjector* fault_ = nullptr;

  std::thread loop_thread_;
  bool running_ = false;

  struct SubscriptionState {
    TimerId timer;
  };
  mutable std::mutex subs_mu_;
  std::map<SubscriptionId, SubscriptionState> subscriptions_;
  SubscriptionId next_subscription_ = 1;
};

}  // namespace apollo
