#include "apollo/deployment_plan.h"

#include "insights/curations.h"
#include "score/monitor_hook.h"

namespace apollo {

std::string DeviceTopic(const Device& device, const std::string& metric) {
  return device.name() + "." + metric;
}

std::string NodeTopic(const Node& node, const std::string& metric) {
  return node.name() + "." + metric;
}

std::string TierTopic(DeviceType tier) {
  return std::string("tier.") + DeviceTypeName(tier) + ".remaining";
}

namespace {

FactDeployment BaseFactDeployment(const DeploymentPlanOptions& options,
                                  NodeId node) {
  FactDeployment deployment;
  deployment.controller = options.controller;
  deployment.aimd = options.aimd;
  deployment.fixed_interval = options.fixed_interval;
  deployment.node = node;
  deployment.use_delphi = options.use_delphi;
  deployment.prediction_granularity = options.prediction_granularity;
  deployment.archive = options.archive;
  return deployment;
}

}  // namespace

Expected<DeploymentPlan> DeployStandardMonitoring(
    ApolloService& service, Cluster& cluster,
    const DeploymentPlanOptions& options) {
  DeploymentPlan plan;

  auto deploy_fact = [&](MonitorHook hook, NodeId node,
                         const std::string& topic) -> Status {
    FactDeployment deployment = BaseFactDeployment(options, node);
    deployment.topic = topic;
    auto result = service.DeployFact(std::move(hook), deployment);
    if (!result.ok()) {
      return Status(result.error().code(), result.error().message());
    }
    plan.fact_topics.push_back(topic);
    return Status::Ok();
  };

  // Per-device facts.
  for (const auto& node : cluster.nodes()) {
    for (const auto& device : node->devices()) {
      if (options.capacity) {
        Status s = deploy_fact(
            CapacityRemainingHook(*device, options.hook_cost), node->id(),
            DeviceTopic(*device, "capacity_remaining"));
        if (!s.ok()) return Error(s.code(), s.message());
      }
      if (options.utilization) {
        Status s = deploy_fact(UtilizationHook(*device, options.hook_cost),
                               node->id(),
                               DeviceTopic(*device, "utilization"));
        if (!s.ok()) return Error(s.code(), s.message());
      }
      if (options.queue_depth) {
        Status s = deploy_fact(QueueDepthHook(*device, options.hook_cost),
                               node->id(),
                               DeviceTopic(*device, "queue_depth"));
        if (!s.ok()) return Error(s.code(), s.message());
      }
      if (options.bandwidth) {
        Status s = deploy_fact(RealBandwidthHook(*device, options.hook_cost),
                               node->id(), DeviceTopic(*device, "real_bw"));
        if (!s.ok()) return Error(s.code(), s.message());
      }
    }
    if (options.cpu_load) {
      Status s = deploy_fact(CpuLoadHook(*node, options.hook_cost),
                             node->id(), NodeTopic(*node, "cpu_load"));
      if (!s.ok()) return Error(s.code(), s.message());
    }
    if (options.power) {
      Status s = deploy_fact(PowerHook(*node, options.hook_cost), node->id(),
                             NodeTopic(*node, "power_watts"));
      if (!s.ok()) return Error(s.code(), s.message());
    }
  }

  if (options.availability) {
    // Deployed after the per-node facts so the supervisor already knows
    // every node. Availability is the intersection of the cluster's
    // liveness signal (a node taken offline is gone regardless of what its
    // last vertices reported) and the supervisor's crash/stall bookkeeping
    // (a node whose monitors keep dying is unavailable even if the cluster
    // still lists it) — with the purely synthetic count as the fallback
    // when the supervisor is disabled.
    MonitorHook hook;
    if (options.availability_from_supervisor &&
        service.supervisor() != nullptr) {
      hook.metric_name = "cluster.available_nodes";
      hook.cost = options.hook_cost;
      hook.read = [&cluster,
                   supervisor = service.supervisor()](TimeNs) {
        double available = 0;
        for (NodeId node : cluster.OnlineNodes()) {
          if (supervisor->NodeHealthy(node)) ++available;
        }
        return available;
      };
    } else {
      hook = insights::AvailableNodeCountHook(cluster, options.hook_cost);
    }
    Status s =
        deploy_fact(std::move(hook), kLocalNode, "cluster.available_nodes");
    if (!s.ok()) return Error(s.code(), s.message());
  }

  auto deploy_insight = [&](InsightVertexConfig config,
                            InsightFn fn) -> Status {
    const std::string topic = config.topic;
    auto result = service.DeployInsight(std::move(config), std::move(fn));
    if (!result.ok()) {
      return Status(result.error().code(), result.error().message());
    }
    plan.insight_topics.push_back(topic);
    return Status::Ok();
  };

  // Per-node total-capacity insights over the device capacity facts.
  if (options.node_insights && options.capacity) {
    for (const auto& node : cluster.nodes()) {
      InsightVertexConfig config;
      config.topic = NodeTopic(*node, "total_capacity");
      config.node = node->id();
      config.pull_interval = options.insight_pull_interval;
      for (const auto& device : node->devices()) {
        config.upstream.push_back(
            DeviceTopic(*device, "capacity_remaining"));
      }
      if (config.upstream.empty()) continue;
      Status s = deploy_insight(std::move(config), SumInsight());
      if (!s.ok()) return Error(s.code(), s.message());
    }
  }

  // Per-tier remaining-capacity insights.
  if (options.tier_insights && options.capacity) {
    for (DeviceType tier : {DeviceType::kRam, DeviceType::kNvme,
                            DeviceType::kSsd, DeviceType::kHdd}) {
      const auto devices = cluster.DevicesOfType(tier);
      if (devices.empty()) continue;
      InsightVertexConfig config;
      config.topic = TierTopic(tier);
      config.pull_interval = options.insight_pull_interval;
      for (Device* device : devices) {
        config.upstream.push_back(
            DeviceTopic(*device, "capacity_remaining"));
      }
      Status s = deploy_insight(std::move(config), SumInsight());
      if (!s.ok()) return Error(s.code(), s.message());
    }
  }

  return plan;
}

}  // namespace apollo
