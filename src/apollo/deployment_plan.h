// StandardDeployment: one-call monitoring coverage for a simulated cluster.
//
// Deploys the monitoring suite a storage-focused site would want (the
// paper's Figure 2 layout generalized): per-device capacity/utilization/
// queue-depth/bandwidth facts, per-node CPU/power facts, per-node and
// per-tier capacity insights, and a cluster availability fact — each with
// the chosen interval controller. Returns the created topic names so
// clients can query them.
#pragma once

#include <string>
#include <vector>

#include "apollo/apollo_service.h"
#include "cluster/cluster.h"

namespace apollo {

struct DeploymentPlanOptions {
  std::string controller = "complex_aimd";
  AimdConfig aimd;
  TimeNs fixed_interval = Seconds(1);
  TimeNs insight_pull_interval = Seconds(2);
  TimeNs hook_cost = 0;
  bool use_delphi = false;
  TimeNs prediction_granularity = Seconds(1);
  // Archiver choice for every deployed fact (see FactDeployment::Archive):
  // inherit follows the service's archive_dir, so a plan deployed on an
  // archiving service is recoverable with ApolloService::Recover().
  FactDeployment::Archive archive = FactDeployment::Archive::kInherit;
  // Metric families to deploy per device.
  bool capacity = true;
  bool utilization = true;
  bool queue_depth = false;
  bool bandwidth = false;
  // Per-node facts.
  bool cpu_load = true;
  bool power = false;
  // Cluster-level extras.
  bool availability = true;
  bool tier_insights = true;
  bool node_insights = true;
  // Feed the cluster.available_nodes fact from the service's vertex
  // supervisor (real crash/stall state of the deployed vertices) instead
  // of the synthetic cluster-model hook. Falls back to the synthetic hook
  // when the service runs without a supervisor.
  bool availability_from_supervisor = true;
};

struct DeploymentPlan {
  std::vector<std::string> fact_topics;
  std::vector<std::string> insight_topics;

  std::size_t TotalVertices() const {
    return fact_topics.size() + insight_topics.size();
  }
};

// Deploys the plan onto `service`. The cluster must outlive the service's
// vertices. Fails fast on the first deployment error.
Expected<DeploymentPlan> DeployStandardMonitoring(
    ApolloService& service, Cluster& cluster,
    const DeploymentPlanOptions& options = {});

// Topic-name conventions used by the standard deployment.
std::string DeviceTopic(const Device& device, const std::string& metric);
std::string NodeTopic(const Node& node, const std::string& metric);
std::string TierTopic(DeviceType tier);

}  // namespace apollo
