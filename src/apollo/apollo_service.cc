#include "apollo/apollo_service.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace apollo {

ApolloService::ApolloService(ApolloOptions options)
    : options_(std::move(options)) {
  if (options_.mode == ApolloOptions::Mode::kSimulated) {
    sim_clock_ = std::make_unique<SimClock>();
    clock_ = sim_clock_.get();
    // Trace spans stamp this service's virtual clock, so exported traces
    // are deterministic under simulation (uninstalled in the destructor).
    obs::TraceRecorder::Global().SetClock(sim_clock_.get());
    loop_ = std::make_unique<EventLoop>(*clock_, /*auto_advance=*/true,
                                        sim_clock_.get());
  } else {
    clock_ = &RealClock::Instance();
    loop_ = std::make_unique<EventLoop>(*clock_);
  }
  broker_ = std::make_unique<Broker>(*clock_, options_.network);
  graph_ = std::make_unique<ScoreGraph>(*broker_);
  if (options_.query_threads > 0 &&
      options_.mode == ApolloOptions::Mode::kRealTime) {
    pool_ = std::make_unique<ThreadPool>(options_.query_threads);
  }
  executor_ = std::make_unique<aqe::Executor>(
      *broker_, pool_.get(), aqe::ExecutorOptions{options_.client_node});
  if (options_.enable_supervisor) {
    supervisor_ =
        std::make_unique<VertexSupervisor>(*graph_, options_.supervisor);
    (void)supervisor_->Start(*loop_);
  }
}

ApolloService::~ApolloService() {
  Stop();
  // Drop the trace clock if it still points at this service's SimClock
  // (another live service may have installed its own since).
  if (sim_clock_ != nullptr &&
      obs::TraceRecorder::Global().clock() == sim_clock_.get()) {
    obs::TraceRecorder::Global().SetClock(nullptr);
  }
  if (supervisor_ != nullptr) supervisor_->Stop();
  // Vertices must be undeployed (their timers cancelled) before the loop is
  // destroyed.
  graph_->UndeployAll();
}

void ApolloService::AttachFaultInjector(FaultInjector* injector) {
  fault_ = injector;
  broker_->AttachFaultInjector(injector);
  for (auto& archiver : archivers_) {
    archiver->AttachFaultInjector(injector);
  }
  {
    std::lock_guard<std::mutex> lock(cold_mu_);
    for (auto& cold : cold_tiers_) cold->AttachFaultInjector(injector);
  }
  if (daemon_ != nullptr) daemon_->server().AttachFaultInjector(injector);
}

Expected<FactVertex*> ApolloService::DeployFact(
    MonitorHook hook, const FactDeployment& deployment) {
  auto controller =
      MakeController(deployment.controller, deployment.aimd,
                     deployment.fixed_interval);
  if (controller == nullptr) {
    return Error(ErrorCode::kInvalidArgument,
                 "unknown controller kind: " + deployment.controller);
  }
  FactVertexConfig config;
  config.topic = deployment.topic.empty() ? hook.metric_name
                                          : deployment.topic;
  config.node = deployment.node;
  config.queue_capacity = deployment.queue_capacity;
  config.publish_only_on_change = deployment.publish_only_on_change;
  const delphi::DelphiModel* model = nullptr;
  if (deployment.use_delphi) {
    if (delphi_ == nullptr) {
      return Error(ErrorCode::kFailedPrecondition,
                   "use_delphi requested but no Delphi model is set");
    }
    model = delphi_.get();
    config.prediction_granularity = deployment.prediction_granularity;
  }
  Archiver<Sample>* archiver = nullptr;
  switch (deployment.archive) {
    case FactDeployment::Archive::kNone:
      break;
    case FactDeployment::Archive::kMemory:
      archivers_.push_back(std::make_unique<Archiver<Sample>>());
      archiver = archivers_.back().get();
      break;
    case FactDeployment::Archive::kInherit:
      if (!options_.archive_dir.empty()) {
        archivers_.push_back(std::make_unique<Archiver<Sample>>(
            options_.archive_dir + "/" + config.topic + ".log",
            options_.wal));
        archiver = archivers_.back().get();
      }
      break;
  }
  if (archiver != nullptr) {
    archiver->set_fault_label(config.topic);
    if (fault_ != nullptr) archiver->AttachFaultInjector(fault_);
    archiver_by_topic_[config.topic] = archiver;
    if (options_.coldtier_enabled && !archiver->InMemory()) {
      auto cold = std::make_unique<coldtier::ColdTier>(archiver->path());
      Status opened = cold->Open();
      if (!opened.ok()) return Error(opened.code(), opened.message());
      // Finish any compaction a crash interrupted before the archiver
      // appends again, then let the archiver consult the tier: range
      // queries merge cold rows and WAL retention only deletes segments
      // the manifest already covers.
      Status reconciled = cold->Reconcile(*archiver);
      if (!reconciled.ok()) {
        return Error(reconciled.code(), reconciled.message());
      }
      cold->set_fault_label(config.topic);
      if (fault_ != nullptr) cold->AttachFaultInjector(fault_);
      archiver->AttachColdReader(cold.get());
      std::lock_guard<std::mutex> lock(cold_mu_);
      cold_by_topic_[config.topic] = {cold.get(), archiver};
      cold_tiers_.push_back(std::move(cold));
    }
  }
  auto vertex = std::make_unique<FactVertex>(
      *broker_, std::move(hook), std::move(controller), std::move(config),
      model, archiver);
  return graph_->AddFact(std::move(vertex), loop_.get());
}

Expected<InsightVertex*> ApolloService::DeployInsight(
    InsightVertexConfig config, InsightFn fn, bool use_delphi) {
  const delphi::DelphiModel* model = nullptr;
  if (use_delphi) {
    if (delphi_ == nullptr) {
      return Error(ErrorCode::kFailedPrecondition,
                   "use_delphi requested but no Delphi model is set");
    }
    model = delphi_.get();
    if (config.prediction_granularity == 0) {
      config.prediction_granularity = Seconds(1);
    }
  }
  auto vertex = std::make_unique<InsightVertex>(*broker_, std::move(fn),
                                                std::move(config), model);
  return graph_->AddInsight(std::move(vertex), loop_.get());
}

Status ApolloService::Undeploy(const std::string& topic) {
  return graph_->Remove(topic);
}

void ApolloService::SetDelphiModel(delphi::DelphiModel model) {
  delphi_ = std::make_unique<delphi::DelphiModel>(std::move(model));
}

Status ApolloService::Start() {
  if (options_.mode != ApolloOptions::Mode::kRealTime) {
    return Status::Ok();  // simulated mode is driven by RunFor/RunUntil
  }
  if (running_) {
    return Status(ErrorCode::kFailedPrecondition, "already started");
  }
  running_ = true;
  if (options_.coldtier_enabled && !compact_timer_armed_) {
    // Background compactor: drain sealed WAL segments into cold blocks on
    // the service's event loop. Best-effort — a failing topic surfaces
    // through CompactNow()/metrics, never stops the loop.
    const TimeNs interval = options_.coldtier_compact_interval;
    compact_timer_ = loop_->AddTimer(interval, [this, interval](TimeNs) {
      (void)CompactNow();
      return interval;
    });
    compact_timer_armed_ = true;
  }
  loop_->ClearStop();  // before the thread starts: no race with Stop()
  loop_thread_ = std::thread([this] {
    loop_->Run(std::numeric_limits<TimeNs>::max(),
               /*stop_when_idle=*/false);
  });
  return Status::Ok();
}

void ApolloService::Stop() {
  StopDaemon();
  if (!running_) return;
  loop_->Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  running_ = false;
}

Expected<std::uint16_t> ApolloService::StartDaemon(net::DaemonConfig config) {
  if (daemon_ != nullptr) {
    return Error(ErrorCode::kFailedPrecondition, "daemon already running");
  }
  auto daemon =
      std::make_unique<net::ApolloDaemon>(*broker_, *executor_, config);
  Status status = daemon->Start();
  if (!status.ok()) return Error(status.code(), status.message());
  if (fault_ != nullptr) daemon->server().AttachFaultInjector(fault_);
  daemon_ = std::move(daemon);
  return daemon_->port();
}

void ApolloService::StopDaemon() {
  if (daemon_ == nullptr) return;
  daemon_->Stop();
  daemon_.reset();
}

Status ApolloService::RunFor(TimeNs duration) {
  return RunUntil(clock_->Now() + duration);
}

Status ApolloService::RunUntil(TimeNs end_time) {
  if (options_.mode != ApolloOptions::Mode::kSimulated) {
    return Status(ErrorCode::kFailedPrecondition,
                  "RunUntil is only valid in simulated mode");
  }
  loop_->ClearStop();
  loop_->Run(end_time, /*stop_when_idle=*/true);
  // Land exactly on end_time so back-to-back RunFor calls tile the
  // timeline.
  sim_clock_->AdvanceTo(end_time);
  return Status::Ok();
}

Expected<ApolloService::RecoveryReport> ApolloService::Recover(
    const std::string& dir) {
  const std::string& root = dir.empty() ? options_.archive_dir : dir;
  if (root.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "Recover needs an archive directory (none configured)");
  }
  const std::string prefix = root.back() == '/' ? root : root + "/";
  RecoveryReport report;
  for (const std::string& topic : graph_->AllTopics()) {
    auto it = archiver_by_topic_.find(topic);
    if (it == archiver_by_topic_.end()) continue;
    Archiver<Sample>* archiver = it->second;
    if (archiver->InMemory()) continue;  // nothing survives a restart
    if (archiver->path().compare(0, prefix.size(), prefix) != 0) continue;

    // The append-safe open already validated segments, truncated torn
    // tails, and quarantined unreadable files; fold its counts in.
    const ArchiveRecoveryStats stats = archiver->RecoveryStats();
    report.segments_scanned += stats.segments_scanned;
    report.records_recovered += stats.records_recovered;
    report.bytes_truncated += stats.bytes_truncated;
    report.corrupt_segments += stats.corrupt_segments;
    report.quarantined_segments += stats.quarantined_segments;

    // Cold blocks were loaded (and any interrupted compaction finished)
    // when the tier opened at deploy time; fold in what is reachable.
    if (coldtier::ColdTier* cold = cold_tier(topic)) {
      report.cold_blocks += cold->BlockCount();
      report.cold_rows += cold->ColdRowCount();
      report.cold_quarantined_blocks += cold->quarantined_blocks();
    }

    auto stream = broker_->GetTopic(topic);
    if (!stream.ok()) return stream.error();
    const std::size_t capacity = stream.value()->Capacity();
    auto tail = archiver->TailRecords(capacity);
    if (!tail.ok()) return tail.error();
    if (tail->empty()) continue;

    std::vector<TelemetryStream::Entry> entries;
    entries.reserve(tail->size());
    for (const auto& rec : *tail) {
      entries.push_back(
          TelemetryStream::Entry{rec.id, rec.timestamp, rec.payload});
    }
    Status restored = broker_->RestoreTopic(topic, entries);
    if (restored.code() == ErrorCode::kFailedPrecondition) {
      ++report.topics_skipped;  // stream already live: never clobber it
      continue;
    }
    if (!restored.ok()) {
      return Error(restored.code(), restored.message());
    }
    ++report.topics_recovered;
    report.records_replayed += entries.size();
  }
  return report;
}

Expected<coldtier::CompactResult> ApolloService::CompactNow() {
  // Snapshot under the lock, compact outside it: CompactOnce does file IO
  // and must not block deploys. The pointers stay valid — tiers and
  // archivers live as long as the service.
  std::vector<std::pair<coldtier::ColdTier*, Archiver<Sample>*>> tiers;
  {
    std::lock_guard<std::mutex> lock(cold_mu_);
    tiers.reserve(cold_by_topic_.size());
    for (const auto& [topic, pair] : cold_by_topic_) tiers.push_back(pair);
  }
  coldtier::CompactResult total;
  for (const auto& [cold, archiver] : tiers) {
    auto result = cold->CompactOnce(*archiver);
    if (!result.ok()) return result.error();
    total.segments_compacted += result->segments_compacted;
    total.blocks_written += result->blocks_written;
    total.rows_compacted += result->rows_compacted;
    total.raw_bytes += result->raw_bytes;
    total.block_bytes += result->block_bytes;
  }
  return total;
}

coldtier::ColdTier* ApolloService::cold_tier(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(cold_mu_);
  auto it = cold_by_topic_.find(topic);
  return it == cold_by_topic_.end() ? nullptr : it->second.first;
}

Expected<aqe::ResultSet> ApolloService::Query(const std::string& query_text) {
  return executor_->Execute(query_text);
}

Expected<aqe::QueryProfile> ApolloService::Explain(
    const std::string& query_text, bool analyze) {
  return executor_->Explain(query_text, analyze);
}

std::string ApolloService::DumpMetrics() const {
  return obs::MetricsRegistry::Global().RenderPrometheus();
}

ApolloService::SubscriptionId ApolloService::Subscribe(
    const std::string& topic, TimeNs poll_interval,
    SampleCallback callback) {
  const NodeId client = options_.client_node;
  // Poll state lives in the timer closure: the topic handle (resolved once
  // the topic exists), the consumer cursor, and a reused fetch buffer so
  // steady-state polls allocate nothing.
  struct PollState {
    TopicHandle handle;
    std::uint64_t cursor = 0;
    std::vector<StreamEntry<Sample>> scratch;
  };
  auto state = std::make_shared<PollState>();
  Broker* broker = broker_.get();
  const TimerId timer = loop_->AddTimer(
      0, [broker, topic, client, state,
          callback = std::move(callback), poll_interval](TimeNs) -> TimeNs {
        if (!state->handle.valid()) {
          auto resolved = broker->Resolve(topic);
          if (!resolved.ok()) return poll_interval;  // wait for creation
          state->handle = *std::move(resolved);
        }
        std::uint64_t position = state->cursor;
        auto fetched = broker->FetchInto(state->handle, client, position,
                                         state->scratch);
        if (fetched.ok()) {
          for (const auto& entry : state->scratch) callback(topic, entry);
          state->cursor = position;
        }
        return poll_interval;
      });

  std::lock_guard<std::mutex> lock(subs_mu_);
  const SubscriptionId id = next_subscription_++;
  subscriptions_.emplace(id, SubscriptionState{timer});
  return id;
}

Status ApolloService::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) {
    return Status(ErrorCode::kNotFound,
                  "no subscription " + std::to_string(id));
  }
  loop_->CancelTimer(it->second.timer);
  subscriptions_.erase(it);
  return Status::Ok();
}

std::size_t ApolloService::SubscriptionCount() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subscriptions_.size();
}

ApolloService::ServiceStats ApolloService::Stats() const {
  ServiceStats stats;
  for (const std::string& topic : graph_->FactTopics()) {
    auto vertex = graph_->FindFact(topic);
    if (!vertex.ok()) continue;
    const VertexStats& vs = (*vertex)->stats();
    ++stats.fact_vertices;
    stats.hook_calls += vs.hook_calls;
    stats.published += vs.published;
    stats.suppressed += vs.suppressed;
    stats.predictions += vs.predictions;
    stats.hook_time_ns += vs.hook_time_ns;
    stats.publish_time_ns += vs.publish_time_ns;
    stats.predict_time_ns += vs.predict_time_ns;
    stats.publish_failures += vs.publish_failures;
    stats.crashes += vs.crashes;
    stats.restarts += vs.restarts;
  }
  for (const std::string& topic : graph_->InsightTopics()) {
    auto vertex = graph_->FindInsight(topic);
    if (!vertex.ok()) continue;
    const VertexStats& vs = (*vertex)->stats();
    ++stats.insight_vertices;
    stats.published += vs.published;
    stats.suppressed += vs.suppressed;
    stats.predictions += vs.predictions;
    stats.publish_time_ns += vs.publish_time_ns;
    stats.predict_time_ns += vs.predict_time_ns;
    stats.publish_failures += vs.publish_failures;
    stats.crashes += vs.crashes;
    stats.restarts += vs.restarts;
  }
  return stats;
}

Expected<double> ApolloService::LatestValue(const std::string& topic) {
  auto latest = broker_->LatestValue(topic, options_.client_node);
  if (!latest.ok()) return latest.error();
  return latest->value;
}

}  // namespace apollo
