#include "coldtier/cold_tier.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pubsub/wal_format.h"

namespace apollo::coldtier {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBlockSuffix = ".blk";
constexpr const char* kTmpSuffix = ".blk.tmp";
constexpr const char* kManifestSuffix = ".manifest";

Status IoError(const std::string& what, const std::string& path) {
  return Status(ErrorCode::kIoError,
                what + ": " + path + " (" + std::strerror(errno) + ")");
}

struct ColdCounters {
  obs::Counter compactions;
  obs::Counter segments_compacted;
  obs::Counter blocks_written;
  obs::Counter rows_compacted;
  obs::Counter raw_bytes;
  obs::Counter block_bytes;
  obs::Counter compact_failures;
  obs::Counter scans;
  obs::Counter blocks_scanned;
  obs::Counter blocks_pruned;
  obs::Counter rows_read;
  obs::Counter blocks_quarantined;
  obs::Counter read_errors;
  obs::Histogram compact_ns;
  obs::Histogram scan_ns;
};

ColdCounters& Counters() {
  static ColdCounters counters = [] {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    return ColdCounters{
        reg.GetCounter("apollo_coldtier_compactions_total",
                       "Compaction passes that drained >= 1 segment"),
        reg.GetCounter("apollo_coldtier_segments_compacted_total",
                       "Sealed WAL segments drained into blocks"),
        reg.GetCounter("apollo_coldtier_blocks_written_total",
                       "Columnar blocks committed to the manifest"),
        reg.GetCounter("apollo_coldtier_rows_compacted_total",
                       "Rows moved from the WAL into blocks"),
        reg.GetCounter("apollo_coldtier_raw_bytes_total",
                       "Raw WAL bytes drained by compaction"),
        reg.GetCounter("apollo_coldtier_block_bytes_total",
                       "Compressed block bytes written"),
        reg.GetCounter("apollo_coldtier_compact_failures_total",
                       "Compaction attempts that failed"),
        reg.GetCounter("apollo_coldtier_scans_total",
                       "Cold-tier range scans"),
        reg.GetCounter("apollo_coldtier_blocks_scanned_total",
                       "Blocks decoded by scans"),
        reg.GetCounter("apollo_coldtier_blocks_pruned_total",
                       "Blocks skipped via zone maps"),
        reg.GetCounter("apollo_coldtier_rows_read_total",
                       "Rows emitted by cold scans"),
        reg.GetCounter("apollo_coldtier_blocks_quarantined_total",
                       "Corrupt blocks renamed .corrupt"),
        reg.GetCounter("apollo_coldtier_read_errors_total",
                       "Unreadable or fault-injected block reads"),
        reg.GetHistogram("apollo_coldtier_compact_duration_ns",
                         "CompactOnce wall time"),
        reg.GetHistogram("apollo_coldtier_scan_duration_ns",
                         "Cold-tier scan wall time"),
    };
  }();
  return counters;
}

// Read-only view of a block file: mmap when possible, buffered read as
// the fallback. Blocks are immutable once renamed into place, so a
// shared mapping never sees concurrent writes.
class MappedFile {
 public:
  ~MappedFile() {
    if (mapped_ != nullptr) ::munmap(mapped_, size_);
  }

  bool Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return false;
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        mapped_ = map;
      } else {
        fallback_.resize(size_);
        if (::read(fd, fallback_.data(), size_) !=
            static_cast<ssize_t>(size_)) {
          ::close(fd);
          return false;
        }
      }
    }
    ::close(fd);
    return true;
  }

  const std::uint8_t* data() const {
    return mapped_ != nullptr ? static_cast<const std::uint8_t*>(mapped_)
                              : fallback_.data();
  }
  std::size_t size() const { return size_; }

 private:
  void* mapped_ = nullptr;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> fallback_;
};

}  // namespace

ColdTier::ColdTier(std::string base_path, ColdTierConfig config)
    : base_path_(std::move(base_path)), config_(std::move(config)) {}

std::string ColdTier::ManifestPath() const {
  return base_path_ + kManifestSuffix;
}

std::string ColdTier::BlockPathFor(std::uint64_t seq) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base_path_ + buf + kBlockSuffix;
}

bool ColdTier::InjectedFault(FaultSite site) {
  FaultInjector* injector = fault_.load(std::memory_order_acquire);
  if (injector == nullptr) return false;
  std::string label;
  {
    std::lock_guard<std::mutex> lock(mu_);
    label = label_.empty() ? base_path_ : label_;
  }
  auto action = injector->Evaluate(site, label);
  return action.has_value() && action->fails();
}

Status ColdTier::Open() {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  auto manifest = ReadManifest(ManifestPath());
  if (!manifest.ok()) {
    return Status(manifest.error().code(), manifest.error().message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(manifest->entries);
  RefreshTotalsLocked();
  opened_ = true;
  return Status::Ok();
}

void ColdTier::RefreshTotalsLocked() {
  std::uint64_t rows = 0;
  std::uint64_t last_seq = last_compacted_seq_.load(std::memory_order_acquire);
  for (const ManifestEntry& entry : entries_) {
    rows += entry.row_count;
    last_seq = std::max(last_seq, entry.last_wal_seq);
  }
  total_rows_.store(rows, std::memory_order_release);
  // Monotonic: quarantining the newest block must not re-open its WAL
  // sequences for retention (their segment files are already gone).
  last_compacted_seq_.store(last_seq, std::memory_order_release);
}

Status ColdTier::Reconcile(Archiver<Sample>& archiver) {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  if (!opened_) {
    return Status(ErrorCode::kFailedPrecondition, "cold tier not opened");
  }
  // Finish step 4 of any interrupted compaction: every manifest-covered
  // WAL segment is redundant and must go.
  const std::uint64_t last =
      last_compacted_seq_.load(std::memory_order_acquire);
  if (last > 0) archiver.DropSegmentsThrough(last);

  // Sweep orphans: temp files from aborted block writes, block files that
  // never made it into the manifest, and a leftover manifest temp.
  std::vector<std::string> referenced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const ManifestEntry& entry : entries_) {
      referenced.push_back(entry.block_file);
    }
  }
  const fs::path base(base_path_);
  const std::string prefix = base.filename().string() + ".";
  std::error_code ec;
  const fs::path dir =
      base.has_parent_path() ? base.parent_path() : fs::path(".");
  if (fs::exists(dir, ec)) {
    for (const auto& item : fs::directory_iterator(dir, ec)) {
      const std::string name = item.path().filename().string();
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      const auto ends_with = [&name](const char* suffix) {
        const std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
      };
      const bool tmp = ends_with(kTmpSuffix) || ends_with(".manifest.tmp");
      const bool orphan_block =
          ends_with(kBlockSuffix) &&
          std::find(referenced.begin(), referenced.end(), name) ==
              referenced.end();
      if (tmp || orphan_block) {
        std::error_code remove_ec;
        fs::remove(item.path(), remove_ec);
      }
    }
  }
  return Status::Ok();
}

Expected<CompactResult> ColdTier::CompactOnce(Archiver<Sample>& archiver,
                                              std::size_t max_segments) {
  TRACE_SPAN("coldtier.compact", base_path_);
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  if (!opened_) {
    return Error(ErrorCode::kFailedPrecondition, "cold tier not opened");
  }
  const TimeNs start = RealClock::Instance().Now();
  CompactResult result;
  const auto hook = [this](const char* point, std::uint64_t seq) {
    if (config_.crash_hook) config_.crash_hook(point, seq);
  };
  using Record = Archiver<Sample>::Record;

  for (const ArchiveLog::SealedSegment& seg : archiver.SealedSegments()) {
    if (result.segments_compacted >= max_segments) break;
    if (IsCompacted(seg.seq)) continue;  // crash window leftovers

    // Decode the sealed segment. Sealed files are immutable, so this read
    // happens outside every archiver lock.
    std::FILE* f = std::fopen(seg.path.c_str(), "rb");
    if (f == nullptr) {
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kIoError,
                   "compact: segment open failed: " + seg.path);
    }
    std::fseek(f, 0, SEEK_END);
    const long seg_size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> raw(seg_size > 0 ? seg_size : 0);
    const bool read_ok =
        raw.empty() || std::fread(raw.data(), 1, raw.size(), f) == raw.size();
    std::fclose(f);
    if (!read_ok) {
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kIoError,
                   "compact: segment read failed: " + seg.path);
    }
    std::vector<BlockRow> rows;
    rows.reserve(seg.records);
    const wal::ScanResult scan = wal::ScanBuffer(
        raw.data(), raw.size(),
        [&rows](const std::uint8_t* payload, std::uint32_t len) {
          if (len != sizeof(Record)) return;
          Record rec;
          std::memcpy(&rec, payload, sizeof(rec));
          rows.push_back(BlockRow{
              rec.id, rec.timestamp, rec.payload.timestamp,
              rec.payload.value,
              static_cast<std::uint8_t>(rec.payload.provenance)});
        });
    if (!scan.header_ok) {
      // The segment rotted since the archiver opened it. Stop here — the
      // archiver's own recovery owns quarantine decisions; compacting
      // past a hole would reorder history.
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kParseError,
                   "compact: segment unreadable: " + seg.path);
    }
    if (rows.empty()) {
      // A fully-torn sealed segment holds nothing worth a block; drop it.
      archiver.DropSegmentsThrough(seg.seq);
      ++result.segments_compacted;
      continue;
    }

    if (InjectedFault(FaultSite::kCompactWrite)) {
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kIoError,
                   "injected compact write failure: " + base_path_);
    }

    std::vector<std::uint8_t> image;
    if (!EncodeBlock(rows, image)) {
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kInternal,
                   "compact: block encode failed: " + seg.path);
    }

    // Step 2: temp write + fsync + rename.
    const std::string block_path = BlockPathFor(seg.seq);
    const std::string tmp_path = block_path + ".tmp";
    std::FILE* out = std::fopen(tmp_path.c_str(), "wb");
    if (out == nullptr) {
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kIoError,
                   "compact: block temp open failed: " + tmp_path);
    }
    const std::size_t half = image.size() / 2;
    bool write_ok = std::fwrite(image.data(), 1, half, out) == half;
    if (write_ok) std::fflush(out);
    hook(kCrashMidBlockWrite, seg.seq);
    write_ok = write_ok &&
               std::fwrite(image.data() + half, 1, image.size() - half,
                           out) == image.size() - half;
    if (!write_ok || std::fflush(out) != 0 || ::fsync(fileno(out)) != 0) {
      std::fclose(out);
      std::remove(tmp_path.c_str());
      Counters().compact_failures.Inc();
      return Error(ErrorCode::kIoError,
                   "compact: block write failed: " + tmp_path);
    }
    std::fclose(out);
    hook(kCrashPreRename, seg.seq);
    if (std::rename(tmp_path.c_str(), block_path.c_str()) != 0) {
      std::remove(tmp_path.c_str());
      Counters().compact_failures.Inc();
      const Status status = IoError("compact: block rename failed", block_path);
      return Error(status.code(), status.message());
    }
    hook(kCrashPostRename, seg.seq);

    // Step 3: manifest commit — the point of no return for this segment.
    ManifestEntry entry;
    entry.first_wal_seq = seg.seq;
    entry.last_wal_seq = seg.seq;
    entry.row_count = rows.size();
    entry.zone = ComputeZoneMap(rows);
    entry.block_file = fs::path(block_path).filename().string();
    Manifest next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      next.entries = entries_;
    }
    next.entries.push_back(entry);
    hook(kCrashPreManifest, seg.seq);
    if (Status status = WriteManifestAtomic(ManifestPath(), next);
        !status.ok()) {
      std::remove(block_path.c_str());  // back to old state: WAL still wins
      Counters().compact_failures.Inc();
      return Error(status.code(), status.message());
    }
    hook(kCrashPostManifest, seg.seq);
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_ = std::move(next.entries);
      RefreshTotalsLocked();
    }

    // Step 4: the WAL copy is now redundant.
    hook(kCrashPreWalDelete, seg.seq);
    archiver.DropSegmentsThrough(seg.seq);

    ++result.segments_compacted;
    ++result.blocks_written;
    result.rows_compacted += rows.size();
    result.raw_bytes += raw.size();
    result.block_bytes += image.size();
  }

  ColdCounters& counters = Counters();
  if (result.segments_compacted > 0) {
    counters.compactions.Inc();
    counters.segments_compacted.Inc(result.segments_compacted);
    counters.blocks_written.Inc(result.blocks_written);
    counters.rows_compacted.Inc(result.rows_compacted);
    counters.raw_bytes.Inc(result.raw_bytes);
    counters.block_bytes.Inc(result.block_bytes);
  }
  counters.compact_ns.Record(RealClock::Instance().Now() - start);
  return result;
}

void ColdTier::QuarantineBlock(const ManifestEntry& entry) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&entry](const ManifestEntry& e) {
                         return e.block_file == entry.block_file;
                       }),
        entries_.end());
    RefreshTotalsLocked();
  }
  quarantined_blocks_.fetch_add(1, std::memory_order_acq_rel);
  Counters().blocks_quarantined.Inc();
  const fs::path dir = fs::path(base_path_).parent_path();
  const fs::path path =
      dir.empty() ? fs::path(entry.block_file) : dir / entry.block_file;
  std::error_code ec;
  fs::rename(path, fs::path(path.string() + ".corrupt"), ec);
}

Status ColdTier::ScanRange(
    TimeNs from_ts, TimeNs to_ts,
    const std::function<void(std::uint64_t id, TimeNs timestamp,
                             const Sample& sample)>& visit,
    ColdScanStats* stats) {
  TRACE_SPAN("coldtier.scan", base_path_);
  ColdScanStats local;
  if (stats == nullptr) stats = &local;
  const TimeNs start = RealClock::Instance().Now();
  std::vector<ManifestEntry> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = entries_;
  }
  const fs::path dir = fs::path(base_path_).parent_path();
  ColdCounters& counters = Counters();
  counters.scans.Inc();
  for (const ManifestEntry& entry : snapshot) {
    ++stats->blocks_total;
    if (entry.zone.max_ts < from_ts || entry.zone.min_ts > to_ts) {
      ++stats->blocks_pruned;
      continue;
    }
    if (InjectedFault(FaultSite::kBlockRead)) {
      ++stats->read_errors;
      counters.read_errors.Inc();
      continue;
    }
    const fs::path path =
        dir.empty() ? fs::path(entry.block_file) : dir / entry.block_file;
    MappedFile file;
    if (!file.Open(path.string())) {
      ++stats->read_errors;
      counters.read_errors.Inc();
      continue;
    }
    DecodedBlock block;
    if (!DecodeBlock(file.data(), file.size(), &block) ||
        block.rows.size() != entry.row_count ||
        !(block.zone == entry.zone)) {
      // Corrupt, or a different block than the manifest committed: either
      // way its rows cannot be trusted. Quarantine and keep scanning.
      QuarantineBlock(entry);
      ++stats->blocks_quarantined;
      continue;
    }
    ++stats->blocks_scanned;
    for (const BlockRow& row : block.rows) {
      if (row.timestamp < from_ts || row.timestamp > to_ts) continue;
      Sample sample;
      sample.timestamp = row.sample_timestamp;
      sample.value = row.value;
      sample.provenance = static_cast<Provenance>(row.provenance);
      visit(row.id, row.timestamp, sample);
      ++stats->rows_visited;
    }
  }
  counters.blocks_scanned.Inc(stats->blocks_scanned);
  counters.blocks_pruned.Inc(stats->blocks_pruned);
  counters.rows_read.Inc(stats->rows_visited);
  counters.scan_ns.Record(RealClock::Instance().Now() - start);
  return Status::Ok();
}

std::uint64_t ColdTier::BlockCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::string> ColdTier::BlockPaths() const {
  std::lock_guard<std::mutex> lock(mu_);
  const fs::path dir = fs::path(base_path_).parent_path();
  std::vector<std::string> paths;
  paths.reserve(entries_.size());
  for (const ManifestEntry& entry : entries_) {
    paths.push_back(
        (dir.empty() ? fs::path(entry.block_file) : dir / entry.block_file)
            .string());
  }
  return paths;
}

void ColdTier::TsBounds(TimeNs* min_ts, TimeNs* max_ts) const {
  std::lock_guard<std::mutex> lock(mu_);
  *min_ts = 0;
  *max_ts = 0;
  bool first = true;
  for (const ManifestEntry& entry : entries_) {
    if (first) {
      *min_ts = entry.zone.min_ts;
      *max_ts = entry.zone.max_ts;
      first = false;
    } else {
      *min_ts = std::min(*min_ts, entry.zone.min_ts);
      *max_ts = std::max(*max_ts, entry.zone.max_ts);
    }
  }
}

}  // namespace apollo::coldtier
