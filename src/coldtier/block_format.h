// Columnar archive block format for the cold tier.
//
// A block is the immutable, compressed form of one sealed WAL segment's
// records. Rows are stored as four independently CRC32C-framed column
// sections behind a fixed header and a zone map (all integers
// little-endian):
//
//   BlockHeader (16 bytes):
//     u32 magic        "ACB1" (0x31424341)
//     u32 version      format version (currently 1)
//     u32 row_count    rows in the block (<= kMaxBlockRows)
//     u32 header_crc   CRC32C over the first 12 bytes
//   ZoneMap (64 bytes):
//     i64 min_ts, max_ts          timestamp bounds over every row
//     u64 min_value_bits          bit pattern of min value (NaNs ignored)
//     u64 max_value_bits          bit pattern of max value (NaNs ignored)
//     u64 sum_value_bits          bit pattern of the row-order value sum
//     u64 first_id, last_id       entry-id bounds (ids strictly increase)
//     u32 zone_crc                CRC32C over the 56 bytes above
//   Column section, repeated 5x (ids, timestamps, sample-timestamp
//   offsets, values, provenance):
//     u32 length
//     u32 crc          CRC32C over the payload
//     u8  payload[length]
//
// Column encodings:
//   ids         varint first_id, then varint deltas (each >= 1)
//   timestamps  zigzag varint t0, zigzag varint first delta, then zigzag
//               varint delta-of-deltas (wrapping two's-complement i64)
//   sample ts   zigzag varint of (sample_timestamp - timestamp) per row —
//               the sample's own clock normally equals the entry clock,
//               so this column is one zero byte per row
//   values      Gorilla-style XOR: raw 64 bits for v0; then per value a
//               '0' bit (same as previous) or '1' + ('0' reuse previous
//               leading/length window | '1' + 5-bit leading-zero count +
//               6-bit (significant-bits - 1)) + the significant bits
//   provenance  RLE pairs (varint run length, u8 value)
//
// The decoder is the fuzz target behind APOLLO_FUZZ: it must never read
// out of bounds and never return rows that differ from what was encoded —
// every section CRC is checked before parsing, every varint/bit read is
// bounds-checked, the whole buffer must be consumed exactly, and the
// stored zone map must match one recomputed from the decoded rows bit for
// bit. Anything else is reported as corrupt, never as data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace apollo::coldtier {

inline constexpr std::uint32_t kBlockMagic = 0x31424341u;  // "ACB1"
inline constexpr std::uint32_t kBlockVersion = 1;
inline constexpr std::size_t kBlockHeaderSize = 16;
inline constexpr std::size_t kZoneMapSize = 64;  // 56 payload + u32 crc + pad
// Upper bound on rows per block: rejects absurd counts decoded from
// corrupt headers before they can drive huge allocations.
inline constexpr std::uint32_t kMaxBlockRows = 1u << 24;
inline constexpr std::uint32_t kMaxSectionLen = 1u << 28;

// One archived row, as stored in the WAL and in a block. `timestamp` is
// the stream-entry clock; `sample_timestamp` is the Sample's own clock
// (almost always identical, preserved exactly so cold reads round-trip
// the WAL record bit for bit).
struct BlockRow {
  std::uint64_t id = 0;
  TimeNs timestamp = 0;
  TimeNs sample_timestamp = 0;
  double value = 0.0;
  std::uint8_t provenance = 0;
};

// Per-block statistics used for scan pruning. min/max value ignore NaNs
// (a block of only NaNs has min=+inf, max=-inf); sum is the row-order
// double sum, stored as a bit pattern so NaN payloads compare exactly.
struct ZoneMap {
  TimeNs min_ts = 0;
  TimeNs max_ts = 0;
  std::uint64_t min_value_bits = 0;
  std::uint64_t max_value_bits = 0;
  std::uint64_t sum_value_bits = 0;
  std::uint64_t first_id = 0;
  std::uint64_t last_id = 0;

  double min_value() const;
  double max_value() const;
  double sum_value() const;

  bool operator==(const ZoneMap& other) const;
};

// Recomputes the zone map over `rows` exactly the way EncodeBlock does.
ZoneMap ComputeZoneMap(const std::vector<BlockRow>& rows);

// Encodes `rows` into a complete block image in `out` (cleared first).
// Fails (returns false, `out` cleared) when rows is empty, exceeds
// kMaxBlockRows, or ids are not strictly increasing.
bool EncodeBlock(const std::vector<BlockRow>& rows,
                 std::vector<std::uint8_t>& out);

struct DecodedBlock {
  ZoneMap zone;
  std::vector<BlockRow> rows;
};

// Decodes a whole block image. Returns false on any malformation: bad
// header/CRC, section overrun, trailing bytes, varint/bitstream overrun,
// non-monotonic ids, RLE mismatch, or a zone map that does not match the
// decoded rows. On false, `out` contents are unspecified.
bool DecodeBlock(const std::uint8_t* data, std::size_t size,
                 DecodedBlock* out);

// Decodes just the header + zone map (for cheap inspection). Returns
// false when the first kBlockHeaderSize + kZoneMapSize bytes are invalid.
bool DecodeZoneMap(const std::uint8_t* data, std::size_t size,
                   std::uint32_t* row_count, ZoneMap* zone);

// Serialization helpers shared with the manifest codec.
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v);
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint32_t GetU32(const std::uint8_t* p);
std::uint64_t GetU64(const std::uint8_t* p);
void PutZone(std::vector<std::uint8_t>& out, const ZoneMap& zone);
ZoneMap GetZone(const std::uint8_t* p);  // reads 56 bytes

}  // namespace apollo::coldtier
