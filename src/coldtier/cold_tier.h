// ColdTier: immutable columnar blocks compacted from sealed WAL segments.
//
// One ColdTier sits beside one Archiver<Sample> (same base path). The
// compactor drains sealed segments oldest-first, one block per segment:
//
//   1. read the sealed segment, decode its records
//   2. write `<base>.<seq>.blk.tmp`, fsync, rename to `<base>.<seq>.blk`
//   3. rewrite `<base>.manifest` atomically with the new entry
//   4. delete the WAL segment
//
// The manifest write (step 3) is the commit point. A crash before it
// leaves the WAL authoritative and at worst an orphan tmp/blk file that
// Reconcile() sweeps; a crash after it leaves the block authoritative and
// Reconcile() finishes step 4 idempotently. Either way every acked row is
// readable from exactly one tier.
//
// Reads are mmap'd: ScanRange prunes blocks on the manifest's zone maps
// (no file IO for a pruned block), decodes survivors, and emits rows in
// [from_ts, to_ts]. A block that fails its CRC/consistency checks is
// quarantined (renamed `.corrupt`, dropped from the live set, counted) —
// a corrupt block can cost rows, never invent them.
//
// Thread safety: ScanRange, IsCompacted, and the metadata accessors are
// safe against a concurrent CompactOnce/Reconcile. Compaction itself is
// serialized internally, so a background compactor thread and manual
// CompactNow() calls can overlap.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "coldtier/block_format.h"
#include "coldtier/manifest.h"
#include "common/expected.h"
#include "common/fault.h"
#include "pubsub/archiver.h"
#include "pubsub/cold_reader.h"

namespace apollo::coldtier {

// Crash points inside CompactOnce, in execution order. The kill-restart
// harness arms a hook at one of these and SIGKILLs itself there.
inline constexpr const char* kCrashMidBlockWrite = "mid_block_write";
inline constexpr const char* kCrashPreRename = "pre_rename";
inline constexpr const char* kCrashPostRename = "post_rename";
inline constexpr const char* kCrashPreManifest = "pre_manifest";
inline constexpr const char* kCrashPostManifest = "post_manifest";
inline constexpr const char* kCrashPreWalDelete = "pre_wal_delete";

struct ColdTierConfig {
  // Test-only crash-point instrumentation: called at each named point
  // with the WAL sequence being compacted. Production leaves this empty.
  std::function<void(const char* point, std::uint64_t wal_seq)> crash_hook;
};

struct CompactResult {
  std::size_t segments_compacted = 0;
  std::size_t blocks_written = 0;
  std::uint64_t rows_compacted = 0;
  std::uint64_t raw_bytes = 0;    // WAL segment bytes drained
  std::uint64_t block_bytes = 0;  // block bytes written
};

class ColdTier : public ColdReaderBase {
 public:
  // `base_path` matches the archiver's: blocks live at `<base>.<seq>.blk`,
  // the manifest at `<base>.manifest`.
  explicit ColdTier(std::string base_path, ColdTierConfig config = {});

  // Loads the manifest (missing = empty tier). Must be called before
  // anything else; a corrupt manifest is an error, not a guess.
  Status Open();

  // Completes any compaction a crash interrupted: deletes WAL segments
  // the manifest already covers (step 4 above) and sweeps orphan
  // *.blk.tmp / unreferenced *.blk files. Idempotent.
  Status Reconcile(Archiver<Sample>& archiver);

  // Compacts up to `max_segments` sealed WAL segments (oldest first) into
  // one block each, committing the manifest and deleting each segment as
  // it lands. Returns how much was compacted; stops at the first failure
  // with the WAL left authoritative for everything uncommitted.
  Expected<CompactResult> CompactOnce(Archiver<Sample>& archiver,
                                      std::size_t max_segments = SIZE_MAX);

  // ColdReaderBase
  Status ScanRange(TimeNs from_ts, TimeNs to_ts,
                   const std::function<void(std::uint64_t id, TimeNs timestamp,
                                            const Sample& sample)>& visit,
                   ColdScanStats* stats) override;
  std::uint64_t ColdRowCount() const override {
    return total_rows_.load(std::memory_order_acquire);
  }
  bool IsCompacted(std::uint64_t wal_seq) const override {
    return wal_seq <= last_compacted_seq_.load(std::memory_order_acquire);
  }

  std::uint64_t BlockCount() const;
  std::vector<std::string> BlockPaths() const;
  std::uint64_t LastCompactedSeq() const {
    return last_compacted_seq_.load(std::memory_order_acquire);
  }
  // Zone-map bounds over the whole tier (0,0 when empty).
  void TsBounds(TimeNs* min_ts, TimeNs* max_ts) const;
  std::uint64_t quarantined_blocks() const {
    return quarantined_blocks_.load(std::memory_order_acquire);
  }

  const std::string& base_path() const { return base_path_; }
  std::string ManifestPath() const;

  // kCompactWrite / kBlockRead faults are evaluated against `label`
  // (defaults to the base path). Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }
  void set_fault_label(std::string label) {
    std::lock_guard<std::mutex> lock(mu_);
    label_ = std::move(label);
  }

 private:
  std::string BlockPathFor(std::uint64_t seq) const;
  bool InjectedFault(FaultSite site);
  // Removes `entry` from the live set and renames its file `.corrupt`.
  void QuarantineBlock(const ManifestEntry& entry);
  // Refreshes total_rows_/last_compacted_seq_ from entries_ (mu_ held).
  void RefreshTotalsLocked();

  std::string base_path_;
  ColdTierConfig config_;
  std::string label_;
  std::atomic<FaultInjector*> fault_{nullptr};

  mutable std::mutex mu_;        // guards entries_ + label_
  std::mutex compact_mu_;        // serializes CompactOnce/Reconcile
  std::vector<ManifestEntry> entries_;
  std::atomic<std::uint64_t> total_rows_{0};
  std::atomic<std::uint64_t> last_compacted_seq_{0};
  std::atomic<std::uint64_t> quarantined_blocks_{0};
  bool opened_ = false;
};

}  // namespace apollo::coldtier
