#include "coldtier/manifest.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "pubsub/wal_format.h"

namespace apollo::coldtier {

namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status(ErrorCode::kIoError,
                what + ": " + path + " (" + std::strerror(errno) + ")");
}

std::string DirectoryOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncPath(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return IoError("manifest fsync open failed", path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("manifest fsync failed", path);
  return Status::Ok();
}

}  // namespace

void EncodeManifest(const Manifest& manifest,
                    std::vector<std::uint8_t>& out) {
  out.clear();
  PutU32(out, kManifestMagic);
  PutU32(out, kManifestVersion);
  PutU32(out, static_cast<std::uint32_t>(manifest.entries.size()));
  PutU32(out, wal::Crc32c(out.data(), 12));
  const std::size_t body_start = out.size();
  for (const ManifestEntry& entry : manifest.entries) {
    PutU64(out, entry.first_wal_seq);
    PutU64(out, entry.last_wal_seq);
    PutU64(out, entry.row_count);
    PutZone(out, entry.zone);
    const std::uint16_t name_len =
        static_cast<std::uint16_t>(entry.block_file.size());
    out.push_back(static_cast<std::uint8_t>(name_len));
    out.push_back(static_cast<std::uint8_t>(name_len >> 8));
    out.insert(out.end(), entry.block_file.begin(), entry.block_file.end());
  }
  PutU32(out, wal::Crc32c(out.data() + body_start, out.size() - body_start));
}

bool DecodeManifest(const std::uint8_t* data, std::size_t size,
                    Manifest* out) {
  if (data == nullptr || size < 20) return false;
  if (GetU32(data) != kManifestMagic) return false;
  if (GetU32(data + 4) != kManifestVersion) return false;
  const std::uint32_t count = GetU32(data + 8);
  if (GetU32(data + 12) != wal::Crc32c(data, 12)) return false;
  if (count > kMaxManifestEntries) return false;
  if (GetU32(data + size - 4) != wal::Crc32c(data + 16, size - 20)) return false;

  out->entries.clear();
  out->entries.reserve(count);
  std::size_t pos = 16;
  const std::size_t body_end = size - 4;
  std::uint64_t prev_last_seq = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Fixed part: 3 u64 + 56-byte zone + u16 name length.
    if (body_end - pos < 24 + 56 + 2) return false;
    ManifestEntry entry;
    entry.first_wal_seq = GetU64(data + pos);
    entry.last_wal_seq = GetU64(data + pos + 8);
    entry.row_count = GetU64(data + pos + 16);
    entry.zone = GetZone(data + pos + 24);
    pos += 24 + 56;
    const std::uint16_t name_len =
        static_cast<std::uint16_t>(data[pos]) |
        static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    if (name_len == 0 || name_len > kMaxBlockFileName) return false;
    if (body_end - pos < name_len) return false;
    entry.block_file.assign(reinterpret_cast<const char*>(data + pos),
                            name_len);
    pos += name_len;
    // Block file names must be plain file names: a corrupt or hostile
    // manifest must not be able to point reads outside its directory.
    if (entry.block_file.find('/') != std::string::npos) return false;
    if (entry.block_file.find('\0') != std::string::npos) return false;
    if (entry.first_wal_seq == 0 ||
        entry.last_wal_seq < entry.first_wal_seq ||
        entry.first_wal_seq <= prev_last_seq || entry.row_count == 0) {
      return false;
    }
    prev_last_seq = entry.last_wal_seq;
    out->entries.push_back(std::move(entry));
  }
  return pos == body_end;
}

Status WriteManifestAtomic(const std::string& path,
                           const Manifest& manifest) {
  std::vector<std::uint8_t> image;
  EncodeManifest(manifest, image);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IoError("manifest temp open failed", tmp);
  if (!image.empty() &&
      std::fwrite(image.data(), 1, image.size(), f) != image.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return IoError("manifest temp write failed", tmp);
  }
  if (std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return IoError("manifest temp fsync failed", tmp);
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("manifest rename failed", path);
  }
  // The rename must survive a crash of the whole machine, not just the
  // process: sync the directory entry too.
  return FsyncPath(DirectoryOf(path), O_RDONLY | O_DIRECTORY);
}

Expected<Manifest> ReadManifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Manifest{};
    return Error(ErrorCode::kIoError, "manifest open failed: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(f);
    return Error(ErrorCode::kIoError, "manifest size failed: " + path);
  }
  std::vector<std::uint8_t> image(static_cast<std::size_t>(end));
  if (!image.empty() &&
      std::fread(image.data(), 1, image.size(), f) != image.size()) {
    std::fclose(f);
    return Error(ErrorCode::kIoError, "manifest read failed: " + path);
  }
  std::fclose(f);
  Manifest manifest;
  if (!DecodeManifest(image.data(), image.size(), &manifest)) {
    return Error(ErrorCode::kParseError, "manifest corrupt: " + path);
  }
  return manifest;
}

}  // namespace apollo::coldtier
