// Cold-tier manifest: the committed WAL→block mapping for one archive.
//
// The manifest is the commit point of compaction. A block file becomes
// durable data the instant a manifest referencing it lands via
// WriteManifestAtomic (temp file + fsync + rename + directory fsync);
// until then it is an orphan any recovery pass may delete, and the WAL
// segments it was built from are still the source of truth. A crash
// therefore leaves either the old manifest (WAL segments intact, orphan
// temp/block files swept on the next open) or the new manifest (block
// committed, covered WAL segments deleted idempotently on the next open)
// — never both representations, never neither.
//
// On-disk layout (little-endian, CRC32C):
//   u32 magic       "ACBM" (0x4D424341)
//   u32 version     currently 1
//   u32 entry_count (<= kMaxManifestEntries)
//   u32 header_crc  over the 12 bytes above
//   entry_count entries:
//     u64 first_wal_seq, u64 last_wal_seq   compacted WAL segment range
//     u64 row_count
//     ZoneMap (56 bytes, see block_format.h)
//     u16 name_len, name bytes               block file name (no directory)
//   u32 body_crc    over all entry bytes
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "coldtier/block_format.h"
#include "common/expected.h"

namespace apollo::coldtier {

inline constexpr std::uint32_t kManifestMagic = 0x4D424341u;  // "ACBM"
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::uint32_t kMaxManifestEntries = 1u << 20;
inline constexpr std::size_t kMaxBlockFileName = 4096;

struct ManifestEntry {
  std::uint64_t first_wal_seq = 0;
  std::uint64_t last_wal_seq = 0;
  std::uint64_t row_count = 0;
  ZoneMap zone;
  std::string block_file;  // file name relative to the manifest's directory
};

struct Manifest {
  std::vector<ManifestEntry> entries;

  // Highest WAL segment sequence covered by any entry (0 when empty —
  // WAL sequences start at 1).
  std::uint64_t LastCompactedSeq() const {
    return entries.empty() ? 0 : entries.back().last_wal_seq;
  }
};

// Serializes the manifest to its on-disk image.
void EncodeManifest(const Manifest& manifest, std::vector<std::uint8_t>& out);

// Strict decoder (fuzzed): bounds-checked, CRC-validated, exact
// consumption, entries must cover increasing WAL sequence ranges.
bool DecodeManifest(const std::uint8_t* data, std::size_t size,
                    Manifest* out);

// Writes `manifest` to `path` atomically: encode to `path`.tmp, fsync the
// file, rename over `path`, fsync the directory.
Status WriteManifestAtomic(const std::string& path, const Manifest& manifest);

// Loads the manifest at `path`. A missing file decodes as an empty
// manifest (nothing compacted yet); a present-but-corrupt file is an
// error — the caller must not guess at what was committed.
Expected<Manifest> ReadManifest(const std::string& path);

}  // namespace apollo::coldtier
