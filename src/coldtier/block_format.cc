#include "coldtier/block_format.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "pubsub/wal_format.h"

namespace apollo::coldtier {

namespace {

// ---------------------------------------------------------------------------
// Primitive codecs. All readers take (data, size, pos) and fail instead of
// reading past `size`; all arithmetic on timestamps is done in uint64 so
// deltas wrap as two's complement without signed overflow.
// ---------------------------------------------------------------------------

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool GetVarint(const std::uint8_t* data, std::size_t size, std::size_t* pos,
               std::uint64_t* v) {
  std::uint64_t result = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    const std::uint8_t byte = data[(*pos)++];
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical tails that overflow 64 bits.
      if (shift == 63 && byte > 1) return false;
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  // Appends the low `n` bits of `v`, most significant first.
  void Write(std::uint64_t v, int n) {
    for (int i = n - 1; i >= 0; --i) {
      acc_ = (acc_ << 1) | ((v >> i) & 1);
      if (++filled_ == 8) {
        out_.push_back(static_cast<std::uint8_t>(acc_));
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  void Finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  BitReader(const std::uint8_t* data, std::size_t size)
      : data_(data), bits_(size * 8) {}

  bool Read(int n, std::uint64_t* v) {
    if (bits_ - pos_ < static_cast<std::size_t>(n)) return false;
    std::uint64_t result = 0;
    for (int i = 0; i < n; ++i) {
      result = (result << 1) |
               ((data_[pos_ >> 3] >> (7 - (pos_ & 7))) & 1);
      ++pos_;
    }
    *v = result;
    return true;
  }

  // Trailing padding must be under one byte and all zero: anything else
  // means the stream and the row count disagree.
  bool AtCleanEnd() {
    if (bits_ - pos_ >= 8) return false;
    std::uint64_t pad = 0;
    const int left = static_cast<int>(bits_ - pos_);
    if (left > 0 && !Read(left, &pad)) return false;
    return pad == 0;
  }

 private:
  const std::uint8_t* data_;
  std::size_t bits_;
  std::size_t pos_ = 0;
};

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// ---------------------------------------------------------------------------
// Column encoders/decoders. Decoders get the exact section payload and must
// consume it fully.
// ---------------------------------------------------------------------------

void EncodeIds(const std::vector<BlockRow>& rows,
               std::vector<std::uint8_t>& out) {
  PutVarint(out, rows[0].id);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    PutVarint(out, rows[i].id - rows[i - 1].id);
  }
}

bool DecodeIds(const std::uint8_t* data, std::size_t size,
               std::vector<BlockRow>& rows) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  if (!GetVarint(data, size, &pos, &v)) return false;
  rows[0].id = v;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (!GetVarint(data, size, &pos, &v)) return false;
    if (v == 0) return false;  // ids must strictly increase
    rows[i].id = rows[i - 1].id + v;
    if (rows[i].id < rows[i - 1].id) return false;  // wrapped
  }
  return pos == size;
}

void EncodeTimestamps(const std::vector<BlockRow>& rows,
                      std::vector<std::uint8_t>& out) {
  PutVarint(out, ZigZag(rows[0].timestamp));
  std::uint64_t prev_delta = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const std::uint64_t delta =
        static_cast<std::uint64_t>(rows[i].timestamp) -
        static_cast<std::uint64_t>(rows[i - 1].timestamp);
    const std::uint64_t dod = delta - prev_delta;
    PutVarint(out, ZigZag(static_cast<std::int64_t>(dod)));
    prev_delta = delta;
  }
}

bool DecodeTimestamps(const std::uint8_t* data, std::size_t size,
                      std::vector<BlockRow>& rows) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  if (!GetVarint(data, size, &pos, &v)) return false;
  rows[0].timestamp = UnZigZag(v);
  std::uint64_t prev_delta = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (!GetVarint(data, size, &pos, &v)) return false;
    const std::uint64_t delta =
        prev_delta + static_cast<std::uint64_t>(UnZigZag(v));
    rows[i].timestamp = static_cast<TimeNs>(
        static_cast<std::uint64_t>(rows[i - 1].timestamp) + delta);
    prev_delta = delta;
  }
  return pos == size;
}

void EncodeSampleTsOffsets(const std::vector<BlockRow>& rows,
                           std::vector<std::uint8_t>& out) {
  for (const BlockRow& row : rows) {
    const std::uint64_t offset =
        static_cast<std::uint64_t>(row.sample_timestamp) -
        static_cast<std::uint64_t>(row.timestamp);
    PutVarint(out, ZigZag(static_cast<std::int64_t>(offset)));
  }
}

bool DecodeSampleTsOffsets(const std::uint8_t* data, std::size_t size,
                           std::vector<BlockRow>& rows) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  for (BlockRow& row : rows) {
    if (!GetVarint(data, size, &pos, &v)) return false;
    row.sample_timestamp = static_cast<TimeNs>(
        static_cast<std::uint64_t>(row.timestamp) +
        static_cast<std::uint64_t>(UnZigZag(v)));
  }
  return pos == size;
}

void EncodeValues(const std::vector<BlockRow>& rows,
                  std::vector<std::uint8_t>& out) {
  BitWriter writer(out);
  std::uint64_t prev = DoubleBits(rows[0].value);
  writer.Write(prev, 64);
  int prev_lead = -1;
  int prev_sig = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const std::uint64_t bits = DoubleBits(rows[i].value);
    const std::uint64_t x = bits ^ prev;
    prev = bits;
    if (x == 0) {
      writer.Write(0, 1);
      continue;
    }
    int lead = __builtin_clzll(x);
    const int trail = __builtin_ctzll(x);
    if (lead > 31) lead = 31;  // 5-bit field
    const int sig = 64 - lead - trail;
    writer.Write(1, 1);
    if (prev_lead >= 0 && lead >= prev_lead &&
        lead + sig <= prev_lead + prev_sig) {
      // Fits in the previous window: reuse it.
      writer.Write(0, 1);
      writer.Write(x >> (64 - prev_lead - prev_sig), prev_sig);
    } else {
      writer.Write(1, 1);
      writer.Write(static_cast<std::uint64_t>(lead), 5);
      writer.Write(static_cast<std::uint64_t>(sig - 1), 6);
      writer.Write(x >> trail, sig);
      prev_lead = lead;
      prev_sig = sig;
    }
  }
  writer.Finish();
}

bool DecodeValues(const std::uint8_t* data, std::size_t size,
                  std::vector<BlockRow>& rows) {
  BitReader reader(data, size);
  std::uint64_t prev = 0;
  if (!reader.Read(64, &prev)) return false;
  rows[0].value = BitsToDouble(prev);
  int prev_lead = -1;
  int prev_sig = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    std::uint64_t bit = 0;
    if (!reader.Read(1, &bit)) return false;
    if (bit == 0) {
      rows[i].value = BitsToDouble(prev);
      continue;
    }
    if (!reader.Read(1, &bit)) return false;
    if (bit != 0) {
      std::uint64_t lead = 0, sig_minus_1 = 0;
      if (!reader.Read(5, &lead)) return false;
      if (!reader.Read(6, &sig_minus_1)) return false;
      prev_lead = static_cast<int>(lead);
      prev_sig = static_cast<int>(sig_minus_1) + 1;
      if (prev_lead + prev_sig > 64) return false;
    } else if (prev_lead < 0) {
      return false;  // window reuse before any window was defined
    }
    std::uint64_t sigbits = 0;
    if (!reader.Read(prev_sig, &sigbits)) return false;
    if (sigbits == 0) return false;  // '1' control bit promised a change
    prev ^= sigbits << (64 - prev_lead - prev_sig);
    rows[i].value = BitsToDouble(prev);
  }
  return reader.AtCleanEnd();
}

void EncodeProvenance(const std::vector<BlockRow>& rows,
                      std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (i < rows.size()) {
    std::size_t run = 1;
    while (i + run < rows.size() &&
           rows[i + run].provenance == rows[i].provenance) {
      ++run;
    }
    PutVarint(out, run);
    out.push_back(rows[i].provenance);
    i += run;
  }
}

bool DecodeProvenance(const std::uint8_t* data, std::size_t size,
                      std::vector<BlockRow>& rows) {
  std::size_t pos = 0;
  std::size_t row = 0;
  while (row < rows.size()) {
    std::uint64_t run = 0;
    if (!GetVarint(data, size, &pos, &run)) return false;
    if (run == 0 || run > rows.size() - row) return false;
    if (pos >= size) return false;
    const std::uint8_t value = data[pos++];
    // Runs must be maximal or the encoding is not canonical.
    if (row > 0 && rows[row - 1].provenance == value) return false;
    for (std::uint64_t i = 0; i < run; ++i) rows[row++].provenance = value;
  }
  return pos == size;
}

void PutSection(std::vector<std::uint8_t>& out,
                const std::vector<std::uint8_t>& payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, wal::Crc32c(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

// Validates framing + CRC of the section at *pos and returns its payload.
bool GetSection(const std::uint8_t* data, std::size_t size, std::size_t* pos,
                const std::uint8_t** payload, std::size_t* payload_size) {
  if (size - *pos < 8) return false;
  const std::uint32_t len = GetU32(data + *pos);
  const std::uint32_t crc = GetU32(data + *pos + 4);
  if (len > kMaxSectionLen || len > size - *pos - 8) return false;
  const std::uint8_t* body = data + *pos + 8;
  if (wal::Crc32c(body, len) != crc) return false;
  *payload = body;
  *payload_size = len;
  *pos += 8 + len;
  return true;
}

}  // namespace

double ZoneMap::min_value() const { return BitsToDouble(min_value_bits); }
double ZoneMap::max_value() const { return BitsToDouble(max_value_bits); }
double ZoneMap::sum_value() const { return BitsToDouble(sum_value_bits); }

bool ZoneMap::operator==(const ZoneMap& other) const {
  return min_ts == other.min_ts && max_ts == other.max_ts &&
         min_value_bits == other.min_value_bits &&
         max_value_bits == other.max_value_bits &&
         sum_value_bits == other.sum_value_bits &&
         first_id == other.first_id && last_id == other.last_id;
}

ZoneMap ComputeZoneMap(const std::vector<BlockRow>& rows) {
  ZoneMap zone;
  if (rows.empty()) return zone;
  zone.min_ts = rows[0].timestamp;
  zone.max_ts = rows[0].timestamp;
  double min_v = std::numeric_limits<double>::infinity();
  double max_v = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const BlockRow& row : rows) {
    if (row.timestamp < zone.min_ts) zone.min_ts = row.timestamp;
    if (row.timestamp > zone.max_ts) zone.max_ts = row.timestamp;
    min_v = std::fmin(min_v, row.value);  // fmin/fmax ignore NaN operands
    max_v = std::fmax(max_v, row.value);
    sum += row.value;
  }
  zone.min_value_bits = DoubleBits(min_v);
  zone.max_value_bits = DoubleBits(max_v);
  zone.sum_value_bits = DoubleBits(sum);
  zone.first_id = rows.front().id;
  zone.last_id = rows.back().id;
  return zone;
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

void PutZone(std::vector<std::uint8_t>& out, const ZoneMap& zone) {
  PutU64(out, static_cast<std::uint64_t>(zone.min_ts));
  PutU64(out, static_cast<std::uint64_t>(zone.max_ts));
  PutU64(out, zone.min_value_bits);
  PutU64(out, zone.max_value_bits);
  PutU64(out, zone.sum_value_bits);
  PutU64(out, zone.first_id);
  PutU64(out, zone.last_id);
}

ZoneMap GetZone(const std::uint8_t* p) {
  ZoneMap zone;
  zone.min_ts = static_cast<TimeNs>(GetU64(p));
  zone.max_ts = static_cast<TimeNs>(GetU64(p + 8));
  zone.min_value_bits = GetU64(p + 16);
  zone.max_value_bits = GetU64(p + 24);
  zone.sum_value_bits = GetU64(p + 32);
  zone.first_id = GetU64(p + 40);
  zone.last_id = GetU64(p + 48);
  return zone;
}

bool EncodeBlock(const std::vector<BlockRow>& rows,
                 std::vector<std::uint8_t>& out) {
  out.clear();
  if (rows.empty() || rows.size() > kMaxBlockRows) return false;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].id <= rows[i - 1].id) return false;
  }
  out.reserve(kBlockHeaderSize + kZoneMapSize + rows.size() * 4);

  PutU32(out, kBlockMagic);
  PutU32(out, kBlockVersion);
  PutU32(out, static_cast<std::uint32_t>(rows.size()));
  PutU32(out, wal::Crc32c(out.data(), 12));

  const ZoneMap zone = ComputeZoneMap(rows);
  PutZone(out, zone);
  PutU32(out, wal::Crc32c(out.data() + kBlockHeaderSize, 56));
  PutU32(out, 0);  // pad the zone map region to 64 bytes

  std::vector<std::uint8_t> column;
  EncodeIds(rows, column);
  PutSection(out, column);
  column.clear();
  EncodeTimestamps(rows, column);
  PutSection(out, column);
  column.clear();
  EncodeSampleTsOffsets(rows, column);
  PutSection(out, column);
  column.clear();
  EncodeValues(rows, column);
  PutSection(out, column);
  column.clear();
  EncodeProvenance(rows, column);
  PutSection(out, column);
  return true;
}

bool DecodeZoneMap(const std::uint8_t* data, std::size_t size,
                   std::uint32_t* row_count, ZoneMap* zone) {
  if (data == nullptr || size < kBlockHeaderSize + kZoneMapSize) return false;
  if (GetU32(data) != kBlockMagic) return false;
  if (GetU32(data + 4) != kBlockVersion) return false;
  const std::uint32_t rows = GetU32(data + 8);
  if (GetU32(data + 12) != wal::Crc32c(data, 12)) return false;
  if (rows == 0 || rows > kMaxBlockRows) return false;
  const std::uint8_t* zp = data + kBlockHeaderSize;
  if (GetU32(zp + 56) != wal::Crc32c(zp, 56)) return false;
  // The 4 pad bytes completing the 64-byte region must be zero: every
  // accepted image is the unique (canonical) encoding of its rows.
  if (GetU32(zp + 60) != 0) return false;
  *row_count = rows;
  *zone = GetZone(zp);
  return true;
}

bool DecodeBlock(const std::uint8_t* data, std::size_t size,
                 DecodedBlock* out) {
  std::uint32_t row_count = 0;
  if (!DecodeZoneMap(data, size, &row_count, &out->zone)) return false;

  out->rows.assign(row_count, BlockRow{});
  std::size_t pos = kBlockHeaderSize + kZoneMapSize;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0;
  if (!GetSection(data, size, &pos, &payload, &payload_size) ||
      !DecodeIds(payload, payload_size, out->rows)) {
    return false;
  }
  if (!GetSection(data, size, &pos, &payload, &payload_size) ||
      !DecodeTimestamps(payload, payload_size, out->rows)) {
    return false;
  }
  if (!GetSection(data, size, &pos, &payload, &payload_size) ||
      !DecodeSampleTsOffsets(payload, payload_size, out->rows)) {
    return false;
  }
  if (!GetSection(data, size, &pos, &payload, &payload_size) ||
      !DecodeValues(payload, payload_size, out->rows)) {
    return false;
  }
  if (!GetSection(data, size, &pos, &payload, &payload_size) ||
      !DecodeProvenance(payload, payload_size, out->rows)) {
    return false;
  }
  if (pos != size) return false;  // trailing bytes

  // The stored zone map must be exactly what the rows produce; a mismatch
  // means corruption the CRCs happened to miss, so reject the block rather
  // than return questionable rows.
  return ComputeZoneMap(out->rows) == out->zone;
}

}  // namespace apollo::coldtier
