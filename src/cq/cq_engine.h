// Continuous-query engine: materialized incremental aggregates pushed to
// subscribers, maintained from the stream's O(1) rolling index — never by
// re-executing the query.
//
// A client registers `SUBSCRIBE SELECT ... [EVERY n ms]` under a
// (tenant, name) key. The engine validates that every UNION branch is
// index-answerable (no WHERE / ORDER BY / LIMIT — the same shape the
// executor's "index" strategy serves in O(1)), takes an immediate
// snapshot, and from then on re-derives the materialized rows only when
// a publish lands on one of the query's topics: Broker::PublishObserver
// flips a per-topic dirty bit (publisher thread, two atomics), and the
// daemon's pump timer evaluates dirty queries on the loop thread by
// reading Stream::Aggregates() through aqe::IndexAggregateCell — the
// exact cells a one-shot query would compute, without parsing, planning,
// or scanning anything.
//
// Delivery protocol (epoch, seq):
//   - registration starts epoch 1; the initial snapshot is seq 1 and
//     every subsequent changed result increments seq.
//   - updates are full row sets (clients replace, not merge), retained in
//     a bounded per-CQ ring. A reconnecting client echoes its last
//     (epoch, seq); when the ring still covers the gap the engine resumes
//     delivery at seq+1 — no duplicates, no holes. When it cannot (ring
//     overflow, changed SQL, unknown epoch) it bumps the epoch and
//     restarts from a fresh snapshot, so a client can always detect a
//     discontinuity by the epoch alone.
//   - under backpressure the engine coalesces: while the newest update is
//     still undelivered, re-evaluations overwrite it in place instead of
//     growing the queue. The client sees the latest state the moment the
//     connection drains, and seq stays hole-free.
//
// Admission: Pump() orders dirty queries by the tenants' weighted-fair
// virtual time and charges each evaluation against the tenant's token
// bucket; an over-quota query stays dirty (counted in
// apollo_cq_throttled_total{tenant}) and retries next pump, so one
// tenant's publish storm cannot starve another tenant's pushes.
//
// Threading: Register/Cancel/DetachConn/Pump run on the daemon loop
// thread (a mutex still guards the records so tests and metrics can peek
// from elsewhere). OnPublish is called from publisher threads and only
// touches the shared-lock topic-watch map plus relaxed atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "aqe/ast.h"
#include "aqe/executor.h"
#include "common/clock.h"
#include "common/expected.h"
#include "cq/admission.h"
#include "obs/metrics.h"
#include "pubsub/broker.h"

namespace apollo::cq {

struct CQOptions {
  // Updates retained per CQ for reconnect resume (ring overflow forces an
  // epoch bump on resume).
  std::size_t update_ring = 64;
  // Registration cap across all tenants.
  std::size_t max_queries = 4096;
  // Token-bucket cost charged per CQ evaluation (one-shot queries charge
  // 1.0; a CQ evaluation is index reads only, so it can be cheaper).
  double eval_cost = 1.0;
};

// One incremental push: the full materialized row set at (epoch, seq).
struct CQUpdate {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  aqe::ResultSet result;
};

// Identity handed to the emit callback alongside each update.
struct CQInfo {
  std::uint64_t cq_id = 0;
  std::uint64_t conn_id = 0;  // owning connection (0 = detached)
  std::string tenant;
  std::string name;
};

class CQEngine : public PublishObserver {
 public:
  CQEngine(Broker& broker, CQOptions options = {});

  // Outcome of Register: resumed=true means delivery continues at
  // seq `last_seq`+1 within `epoch`; otherwise `epoch` is fresh (or
  // bumped) and the first push will be its seq-1 snapshot.
  struct Registration {
    std::uint64_t cq_id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t last_seq = 0;  // last seq the client is assumed to hold
    bool resumed = false;
  };

  // Registers (or re-attaches) the continuous query `sql` under
  // (tenant, name). `resume_epoch`/`resume_seq` echo the client's last
  // received update (0/0 = fresh). Fails with kInvalidArgument when the
  // SQL is not a SUBSCRIBE query or not index-answerable, and
  // kResourceExhausted at max_queries.
  Expected<Registration> Register(std::uint64_t conn_id,
                                  const std::string& tenant,
                                  const std::string& name,
                                  const std::string& sql,
                                  std::uint64_t resume_epoch,
                                  std::uint64_t resume_seq, TimeNs now);

  // Cancels a CQ outright (record and resume history discarded). The
  // caller is expected to own it; kNotFound otherwise.
  Status Cancel(std::uint64_t cq_id, std::uint64_t conn_id);

  // Connection closed: detaches (but keeps) its CQs so the client can
  // reconnect and resume. Returns the detached cq ids.
  std::vector<std::uint64_t> DetachConn(std::uint64_t conn_id);

  // Broker publish hook — publisher threads; flips a dirty bit.
  void OnPublish(const std::string& topic, std::size_t n) override;

  // Returns false to signal backpressure: delivery for that CQ stops and
  // retries next pump (the update is not considered delivered).
  using EmitFn = std::function<bool(const CQInfo&, const CQUpdate&)>;

  // Evaluates dirty queries (weighted-fair order, admission-gated when
  // `admission` is non-null) and emits undelivered updates for attached
  // connections. Loop thread. Returns the number of updates emitted.
  std::size_t Pump(TimeNs now, AdmissionController* admission,
                   const EmitFn& emit);

  std::size_t ActiveCount() const;

  // Continuous queries currently attached to `conn_id`.
  std::size_t OwnedCount(std::uint64_t conn_id) const;

  // Forces every registered CQ dirty (used after topology changes and by
  // tests; a normal publish dirties only its own topic's queries).
  void MarkAllDirty();

 private:
  struct Branch {
    std::string topic;
    const aqe::Select* select = nullptr;  // borrowed from record's query
    TelemetryStream* stream = nullptr;    // cached; revalidated by version
    std::uint64_t registry_version = 0;
  };

  struct CQRecord {
    std::uint64_t id = 0;
    std::uint64_t conn_id = 0;  // 0 = detached (resumable)
    std::string tenant;
    std::string name;
    std::string sql;
    aqe::Query query;
    std::vector<Branch> branches;
    std::uint64_t epoch = 1;
    std::uint64_t seq = 0;            // last materialized update
    std::uint64_t delivered_seq = 0;  // last update the client holds
    TimeNs last_eval = 0;
    bool dirty = false;
    std::deque<CQUpdate> ring;  // retained updates, oldest first
    // Previous materialized values per branch row (change detection).
    std::vector<std::vector<double>> last_values;
    bool last_degraded = false;
    bool has_snapshot = false;
  };

  struct TopicWatch {
    std::atomic<bool> dirty{false};
    std::vector<std::uint64_t> cq_ids;  // guarded by watch_mu_
  };

  struct TenantCounters {
    obs::Counter updates;
    obs::Counter evals;
    obs::Counter throttled;
    obs::Counter coalesced;
  };

  // Materializes the current row set; locked(mu_) caller.
  aqe::ResultSet Evaluate(CQRecord& record, TimeNs now);
  // Appends (or coalesces) `result` as the next update when it differs
  // from the record's last values. Returns true when a push was produced.
  bool Materialize(CQRecord& record, aqe::ResultSet result);
  void WatchTopics(const CQRecord& record);
  void UnwatchTopics(const CQRecord& record);
  TenantCounters& CountersFor(const std::string& tenant);
  static Status Validate(const aqe::Query& query);

  Broker& broker_;
  CQOptions options_;

  mutable std::mutex mu_;  // records_, next_id_, tenant_counters_
  std::unordered_map<std::uint64_t, CQRecord> records_;
  std::unordered_map<std::string, TenantCounters> tenant_counters_;
  std::uint64_t next_id_ = 1;

  // Topic-name -> watch; OnPublish takes the shared lock only.
  mutable std::shared_mutex watch_mu_;
  std::unordered_map<std::string, std::unique_ptr<TopicWatch>> watches_;

  obs::Gauge active_;
  obs::Counter registered_total_;
  obs::Counter resumed_total_;
  obs::Counter epoch_bumps_total_;
};

}  // namespace apollo::cq
