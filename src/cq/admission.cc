#include "cq/admission.h"

#include <algorithm>
#include <utility>

namespace apollo::cq {

namespace {

TenantQuota Normalize(TenantQuota q) {
  if (q.weight <= 0.0) q.weight = 1.0;
  if (q.rate_per_sec > 0.0 && q.burst <= 0.0) {
    q.burst = std::max(q.rate_per_sec, 1.0);
  }
  return q;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  options_.default_quota = Normalize(options_.default_quota);
  for (auto& [name, quota] : options_.tenant_quotas) quota = Normalize(quota);
}

AdmissionController::Tenant& AdmissionController::TenantFor(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  Tenant t;
  auto qit = options_.tenant_quotas.find(name);
  t.quota =
      qit != options_.tenant_quotas.end() ? qit->second : options_.default_quota;
  t.tokens = t.quota.burst;
  auto& registry = obs::MetricsRegistry::Global();
  const obs::Labels labels{{"tenant", name}};
  t.admitted_total = registry.GetCounter(
      "apollo_admission_admitted_total",
      "Queries and CQ evaluations admitted, by tenant", labels);
  t.shed_total = registry.GetCounter(
      "apollo_admission_shed_total",
      "Queries and CQ evaluations shed by quota, by tenant", labels);
  return tenants_.emplace(name, std::move(t)).first->second;
}

void AdmissionController::Refill(Tenant& t, TimeNs now) {
  if (t.quota.rate_per_sec <= 0.0) return;  // unlimited
  if (t.refilled_at == 0) {
    t.refilled_at = now;
    return;
  }
  const TimeNs dt = now - t.refilled_at;
  if (dt <= 0) return;
  t.tokens = std::min(
      t.quota.burst,
      t.tokens + t.quota.rate_per_sec * static_cast<double>(dt) * 1e-9);
  t.refilled_at = now;
}

bool AdmissionController::Admit(const std::string& tenant, TimeNs now,
                                double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantFor(tenant);
  Refill(t, now);
  if (t.quota.rate_per_sec > 0.0 && t.tokens < cost) {
    ++t.shed;
    t.shed_total.Inc();
    return false;
  }
  if (t.quota.rate_per_sec > 0.0) t.tokens -= cost;
  ++t.admitted;
  t.admitted_total.Inc();
  const double start = std::max(t.vtime, vfloor_);
  t.vtime = start + cost / t.quota.weight;
  vfloor_ = start;
  return true;
}

double AdmissionController::FairStart(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantFor(tenant);
  return std::max(t.vtime, vfloor_);
}

void AdmissionController::SetQuota(const std::string& tenant,
                                   const TenantQuota& quota) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.tenant_quotas[tenant] = Normalize(quota);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    it->second.quota = options_.tenant_quotas[tenant];
    it->second.tokens = it->second.quota.burst;
  }
}

TenantAdmissionStats AdmissionController::Stats(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  Tenant& t = TenantFor(tenant);
  TenantAdmissionStats stats;
  stats.admitted = t.admitted;
  stats.shed = t.shed;
  stats.tokens = t.tokens;
  stats.rate_per_sec = t.quota.rate_per_sec;
  stats.weight = t.quota.weight;
  return stats;
}

std::vector<std::pair<std::string, TenantAdmissionStats>>
AdmissionController::AllStats() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TenantAdmissionStats>> out;
  out.reserve(tenants_.size());
  for (auto& [name, t] : tenants_) {
    TenantAdmissionStats stats;
    stats.admitted = t.admitted;
    stats.shed = t.shed;
    stats.tokens = t.tokens;
    stats.rate_per_sec = t.quota.rate_per_sec;
    stats.weight = t.quota.weight;
    out.emplace_back(name, stats);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace apollo::cq
