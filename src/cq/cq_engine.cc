#include "cq/cq_engine.h"

#include <algorithm>
#include <utility>

#include "aqe/parser.h"

namespace apollo::cq {

CQEngine::CQEngine(Broker& broker, CQOptions options)
    : broker_(broker), options_(std::move(options)) {
  if (options_.update_ring == 0) options_.update_ring = 1;
  auto& registry = obs::MetricsRegistry::Global();
  active_ = registry.GetGauge("apollo_cq_active",
                              "Continuous queries currently registered");
  registered_total_ = registry.GetCounter("apollo_cq_registered_total",
                                          "CQ registrations accepted");
  resumed_total_ = registry.GetCounter(
      "apollo_cq_resumes_total", "CQ re-registrations resumed without a gap");
  epoch_bumps_total_ = registry.GetCounter(
      "apollo_cq_epoch_bumps_total",
      "CQ re-registrations that could not resume and restarted an epoch");
}

CQEngine::TenantCounters& CQEngine::CountersFor(const std::string& tenant) {
  auto it = tenant_counters_.find(tenant);
  if (it != tenant_counters_.end()) return it->second;
  auto& registry = obs::MetricsRegistry::Global();
  const obs::Labels labels{{"tenant", tenant}};
  TenantCounters counters;
  counters.updates = registry.GetCounter(
      "apollo_cq_updates_total", "CQ incremental updates pushed, by tenant",
      labels);
  counters.evals = registry.GetCounter(
      "apollo_cq_evals_total", "CQ materialization passes, by tenant", labels);
  counters.throttled = registry.GetCounter(
      "apollo_cq_throttled_total",
      "CQ evaluations deferred by admission control, by tenant", labels);
  counters.coalesced = registry.GetCounter(
      "apollo_cq_coalesced_total",
      "CQ updates coalesced into an undelivered push, by tenant", labels);
  return tenant_counters_.emplace(tenant, std::move(counters)).first->second;
}

Status CQEngine::Validate(const aqe::Query& query) {
  if (!query.continuous) {
    return Status(ErrorCode::kInvalidArgument,
                  "continuous query must start with SUBSCRIBE");
  }
  if (query.selects.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty query");
  }
  for (const aqe::Select& select : query.selects) {
    if (select.items.empty()) {
      return Status(ErrorCode::kInvalidArgument, "empty select list");
    }
    // Only index-answerable branches are accepted: the whole point of a
    // CQ is maintenance from the O(1) rolling index, which covers
    // aggregates over the full window but not predicates or ordering.
    if (!select.where.empty() || select.order_by.has_value() ||
        select.limit.has_value()) {
      return Status(ErrorCode::kInvalidArgument,
                    "SUBSCRIBE supports aggregate selects only (no WHERE / "
                    "ORDER BY / LIMIT)");
    }
  }
  return Status::Ok();
}

void CQEngine::WatchTopics(const CQRecord& record) {
  std::unique_lock<std::shared_mutex> lock(watch_mu_);
  for (const Branch& branch : record.branches) {
    auto& watch = watches_[branch.topic];
    if (watch == nullptr) watch = std::make_unique<TopicWatch>();
    auto& ids = watch->cq_ids;
    if (std::find(ids.begin(), ids.end(), record.id) == ids.end()) {
      ids.push_back(record.id);
    }
  }
}

void CQEngine::UnwatchTopics(const CQRecord& record) {
  std::unique_lock<std::shared_mutex> lock(watch_mu_);
  for (const Branch& branch : record.branches) {
    auto it = watches_.find(branch.topic);
    if (it == watches_.end()) continue;
    auto& ids = it->second->cq_ids;
    ids.erase(std::remove(ids.begin(), ids.end(), record.id), ids.end());
    if (ids.empty()) watches_.erase(it);
  }
}

Expected<CQEngine::Registration> CQEngine::Register(
    std::uint64_t conn_id, const std::string& tenant, const std::string& name,
    const std::string& sql, std::uint64_t resume_epoch,
    std::uint64_t resume_seq, TimeNs now) {
  auto parsed = aqe::Parse(sql);
  if (!parsed.ok()) return parsed.error();
  if (Status valid = Validate(*parsed); !valid.ok()) return Error(valid.code(), valid.message());

  std::lock_guard<std::mutex> lock(mu_);

  // Re-registration under the same (tenant, name): resume or restart.
  CQRecord* existing = nullptr;
  for (auto& [id, record] : records_) {
    if (record.tenant == tenant && record.name == name) {
      existing = &record;
      break;
    }
  }

  if (existing != nullptr) {
    CQRecord& record = *existing;
    record.conn_id = conn_id;
    const bool same_query = record.sql == sql;
    // Resumable when the query is unchanged, the epoch matches, and the
    // retained ring still covers every update past resume_seq.
    const std::uint64_t ring_floor =
        record.ring.empty() ? record.seq + 1 : record.ring.front().seq;
    const bool resumable = same_query && resume_epoch == record.epoch &&
                           resume_seq <= record.seq &&
                           resume_seq + 1 >= ring_floor;
    Registration reg;
    reg.cq_id = record.id;
    if (resumable) {
      record.delivered_seq = resume_seq;
      resumed_total_.Inc();
      reg.epoch = record.epoch;
      reg.last_seq = resume_seq;
      reg.resumed = true;
      return reg;
    }
    // Discontinuity: new epoch, fresh snapshot as its seq 1.
    if (!same_query) {
      UnwatchTopics(record);
      record.sql = sql;
      record.query = std::move(*parsed);
      record.branches.clear();
      for (const aqe::Select& select : record.query.selects) {
        Branch branch;
        branch.topic = select.table;
        branch.select = &select;
        record.branches.push_back(std::move(branch));
      }
      WatchTopics(record);
    }
    ++record.epoch;
    record.seq = 0;
    record.delivered_seq = 0;
    record.ring.clear();
    record.last_values.clear();
    record.has_snapshot = false;
    record.last_eval = 0;
    epoch_bumps_total_.Inc();
    Materialize(record, Evaluate(record, now));
    record.dirty = false;
    reg.epoch = record.epoch;
    reg.last_seq = 0;
    reg.resumed = false;
    return reg;
  }

  if (records_.size() >= options_.max_queries) {
    return Error(ErrorCode::kResourceExhausted, "continuous query limit reached");
  }

  CQRecord record;
  record.id = next_id_++;
  record.conn_id = conn_id;
  record.tenant = tenant;
  record.name = name;
  record.sql = sql;
  record.query = std::move(*parsed);
  for (const aqe::Select& select : record.query.selects) {
    Branch branch;
    branch.topic = select.table;
    branch.select = &select;
    record.branches.push_back(std::move(branch));
  }

  Registration reg;
  reg.cq_id = record.id;
  reg.epoch = record.epoch;
  reg.last_seq = 0;
  reg.resumed = false;

  auto [it, inserted] = records_.emplace(record.id, std::move(record));
  CQRecord& stored = it->second;
  WatchTopics(stored);
  // Immediate snapshot (seq 1) so the first pump pushes current state
  // without waiting for a publish.
  Materialize(stored, Evaluate(stored, now));
  stored.dirty = false;
  registered_total_.Inc();
  active_.Set(static_cast<double>(records_.size()));
  return reg;
}

Status CQEngine::Cancel(std::uint64_t cq_id, std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(cq_id);
  if (it == records_.end()) {
    return Status(ErrorCode::kNotFound, "unknown continuous query");
  }
  if (conn_id != 0 && it->second.conn_id != 0 &&
      it->second.conn_id != conn_id) {
    return Status(ErrorCode::kFailedPrecondition,
                  "continuous query owned by another connection");
  }
  UnwatchTopics(it->second);
  records_.erase(it);
  active_.Set(static_cast<double>(records_.size()));
  return Status::Ok();
}

std::vector<std::uint64_t> CQEngine::DetachConn(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> detached;
  for (auto& [id, record] : records_) {
    if (record.conn_id == conn_id) {
      record.conn_id = 0;
      detached.push_back(id);
    }
  }
  return detached;
}

void CQEngine::OnPublish(const std::string& topic, std::size_t n) {
  (void)n;
  std::shared_lock<std::shared_mutex> lock(watch_mu_);
  auto it = watches_.find(topic);
  if (it == watches_.end()) return;
  it->second->dirty.store(true, std::memory_order_release);
}

void CQEngine::MarkAllDirty() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, record] : records_) record.dirty = true;
}

aqe::ResultSet CQEngine::Evaluate(CQRecord& record, TimeNs now) {
  (void)now;
  aqe::ResultSet result;
  const aqe::Select& first = record.query.selects.front();
  result.columns.reserve(first.items.size());
  for (const aqe::SelectItem& item : first.items) {
    result.columns.push_back(aqe::SelectItemLabel(item));
  }

  const std::uint64_t version = broker_.RegistryVersion();
  for (Branch& branch : record.branches) {
    // Stream pointer cached at registration; topic churn (registry
    // version bump) forces a by-name re-resolve, same self-heal as
    // TopicHandle.
    if (branch.stream == nullptr || branch.registry_version != version) {
      auto resolved = broker_.GetTopic(branch.topic);
      branch.stream = resolved.ok() ? *resolved : nullptr;
      branch.registry_version = version;
    }
    aqe::ResultRow row;
    row.source = branch.topic;
    if (branch.stream == nullptr) {
      // Unknown topic: NaN cells (COUNT 0), degraded row — mirrors how a
      // one-shot query against a vanished vertex reports.
      row.degraded = true;
      for (const aqe::SelectItem& item : branch.select->items) {
        row.values.push_back(
            aqe::IndexAggregateCell(item, std::nullopt));
      }
    } else {
      TelemetryStream* stream = branch.stream;
      const auto agg = stream->Aggregates();
      for (const aqe::SelectItem& item : branch.select->items) {
        row.values.push_back(aqe::IndexAggregateCell(item, agg));
      }
      // Same degradation surface the executor stamps per branch.
      row.degraded = stream->degraded();
      if (auto newest = stream->Latest(); newest.has_value()) {
        row.staleness_ns = std::max<TimeNs>(
            0, broker_.clock().Now() - newest->value.timestamp);
      }
    }
    result.degraded = result.degraded || row.degraded;
    result.max_staleness_ns =
        std::max(result.max_staleness_ns, row.staleness_ns);
    result.rows.push_back(std::move(row));
  }
  return result;
}

bool CQEngine::Materialize(CQRecord& record, aqe::ResultSet result) {
  // Change detection on values + degradation only — staleness advances
  // with the clock on every evaluation and must not count as a change.
  std::vector<std::vector<double>> values;
  values.reserve(result.rows.size());
  bool degraded = result.degraded;
  for (const aqe::ResultRow& row : result.rows) values.push_back(row.values);
  const bool changed = !record.has_snapshot || values != record.last_values ||
                       degraded != record.last_degraded;
  if (!changed) return false;
  record.last_values = std::move(values);
  record.last_degraded = degraded;
  record.has_snapshot = true;

  TenantCounters& counters = CountersFor(record.tenant);
  if (!record.ring.empty() && record.ring.back().seq > record.delivered_seq) {
    // Backpressure coalescing: the newest update never reached the
    // client, so replace its payload in place — seq stays hole-free and
    // the client gets the latest state once the connection drains.
    record.ring.back().result = std::move(result);
    counters.coalesced.Inc();
    return true;
  }
  CQUpdate update;
  update.epoch = record.epoch;
  update.seq = ++record.seq;
  update.result = std::move(result);
  record.ring.push_back(std::move(update));
  while (record.ring.size() > options_.update_ring &&
         record.ring.front().seq <= record.delivered_seq) {
    record.ring.pop_front();
  }
  return true;
}

std::size_t CQEngine::Pump(TimeNs now, AdmissionController* admission,
                           const EmitFn& emit) {
  // Phase 1: drain publish-dirty topics into per-record dirty flags.
  // Collected under watch_mu_ alone, applied under mu_ alone: Register /
  // Cancel nest mu_ -> watch_mu_, so holding both here in the opposite
  // order would be a lock-order inversion.
  std::vector<std::uint64_t> dirty_ids;
  {
    std::shared_lock<std::shared_mutex> watch_lock(watch_mu_);
    for (auto& [topic, watch] : watches_) {
      if (!watch->dirty.exchange(false, std::memory_order_acq_rel)) continue;
      dirty_ids.insert(dirty_ids.end(), watch->cq_ids.begin(),
                       watch->cq_ids.end());
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (std::uint64_t id : dirty_ids) {
    auto it = records_.find(id);
    if (it != records_.end()) it->second.dirty = true;
  }

  // Phase 2: order due evaluations by the tenants' weighted-fair virtual
  // time, then evaluate under admission.
  std::vector<std::pair<double, std::uint64_t>> due;
  for (auto& [id, record] : records_) {
    if (!record.dirty) continue;
    if (record.query.every_ns > 0 && record.last_eval != 0 &&
        now - record.last_eval < record.query.every_ns) {
      continue;  // stays dirty; due again once the interval elapses
    }
    const double tag =
        admission != nullptr ? admission->FairStart(record.tenant) : 0.0;
    due.emplace_back(tag, id);
  }
  std::sort(due.begin(), due.end());

  for (const auto& [tag, id] : due) {
    auto it = records_.find(id);
    if (it == records_.end()) continue;
    CQRecord& record = it->second;
    if (admission != nullptr &&
        !admission->Admit(record.tenant, now, options_.eval_cost)) {
      // Over quota: evaluation deferred, dirty bit kept — the tenant's
      // push lags but no other tenant pays for it.
      CountersFor(record.tenant).throttled.Inc();
      continue;
    }
    record.dirty = false;
    record.last_eval = now;
    CountersFor(record.tenant).evals.Inc();
    Materialize(record, Evaluate(record, now));
  }

  // Phase 3: deliver undelivered updates for attached connections.
  std::size_t emitted = 0;
  for (auto& [id, record] : records_) {
    if (record.conn_id == 0 || record.delivered_seq >= record.seq) continue;
    CQInfo info;
    info.cq_id = record.id;
    info.conn_id = record.conn_id;
    info.tenant = record.tenant;
    info.name = record.name;
    TenantCounters& counters = CountersFor(record.tenant);
    for (const CQUpdate& update : record.ring) {
      if (update.seq <= record.delivered_seq) continue;
      if (!emit(info, update)) break;  // backpressure: retry next pump
      record.delivered_seq = update.seq;
      counters.updates.Inc();
      ++emitted;
    }
    while (record.ring.size() > options_.update_ring &&
           record.ring.front().seq <= record.delivered_seq) {
      record.ring.pop_front();
    }
  }
  return emitted;
}

std::size_t CQEngine::ActiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::size_t CQEngine::OwnedCount(std::uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.conn_id == conn_id) ++n;
  }
  return n;
}

}  // namespace apollo::cq
