// Per-tenant admission control for query evaluation.
//
// Every tenant (wire handshakes carry a tenant id; empty maps to
// "default") gets a token bucket sized by its quota: Admit() spends
// `cost` tokens when available and refuses otherwise, which the daemon
// turns into load-shedding — a refused one-shot query degrades to the
// cached last-known-good answer, a refused CQ evaluation stays dirty and
// retries next pump. Buckets refill continuously at rate_per_sec up to
// `burst`, so a tenant that stays under its rate never notices the
// controller.
//
// On top of the buckets sits start-time fair queueing: FairStart()
// returns a virtual-time tag (start = max(tenant.vtime, vfloor)), and
// admitted work advances the tenant's virtual time by cost/weight. The
// CQ engine sorts pending evaluations by tag, so when evaluation budget
// is scarce a weight-2 tenant gets twice the service of a weight-1
// tenant instead of whoever published last winning.
//
// Thread-safe (one mutex); callers are the daemon loop thread plus
// tests. Per-tenant accounting is exported as
// apollo_admission_admitted_total{tenant=...} /
// apollo_admission_shed_total{tenant=...}.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace apollo::cq {

struct TenantQuota {
  // Sustained admissions per second. <= 0 means unlimited (Admit always
  // succeeds; fair-queueing weight still applies).
  double rate_per_sec = 0.0;
  // Bucket capacity (peak burst). <= 0 defaults to max(rate_per_sec, 1).
  double burst = 0.0;
  // Weighted-fair share relative to other tenants (<= 0 clamps to 1).
  double weight = 1.0;
};

struct AdmissionOptions {
  // Quota applied to tenants with no explicit entry.
  TenantQuota default_quota;
  std::unordered_map<std::string, TenantQuota> tenant_quotas;
};

// Point-in-time accounting for one tenant (EXPLAIN ANALYZE surface).
struct TenantAdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  double tokens = 0.0;        // tokens currently in the bucket
  double rate_per_sec = 0.0;  // 0 = unlimited
  double weight = 1.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Spends `cost` tokens from `tenant`'s bucket (refilled to `now`
  // first). True = admitted (tenant virtual time advances by
  // cost/weight); false = shed. Unlimited tenants always admit.
  bool Admit(const std::string& tenant, TimeNs now, double cost = 1.0);

  // Virtual-time tag this tenant's next evaluation would start at —
  // lower tags go first. Pure peek: charges nothing.
  double FairStart(const std::string& tenant);

  // Replaces one tenant's quota (token balance resets to the new burst).
  void SetQuota(const std::string& tenant, const TenantQuota& quota);

  TenantAdmissionStats Stats(const std::string& tenant);

  // Tenants seen so far with their accounting, name-sorted.
  std::vector<std::pair<std::string, TenantAdmissionStats>> AllStats();

 private:
  struct Tenant {
    TenantQuota quota;
    double tokens = 0.0;
    TimeNs refilled_at = 0;
    double vtime = 0.0;  // start-time fair-queueing virtual time
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    obs::Counter admitted_total;
    obs::Counter shed_total;
  };

  Tenant& TenantFor(const std::string& name);
  void Refill(Tenant& t, TimeNs now);

  std::mutex mu_;
  AdmissionOptions options_;
  std::unordered_map<std::string, Tenant> tenants_;
  // Floor of the fair-queueing virtual clock: an idle tenant's next tag
  // starts here instead of at its stale (tiny) vtime, so coming back
  // from idle does not starve active tenants.
  double vfloor_ = 0.0;
};

}  // namespace apollo::cq
