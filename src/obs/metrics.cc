#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>

namespace apollo::obs {

namespace {

// Same bucketing as LatencyHistogram::Record: bucket 0 holds v <= 1,
// otherwise floor(log2(v)).
std::size_t BucketFor(std::int64_t value_ns) {
  if (value_ns < 1) value_ns = 1;
  std::size_t bucket = 0;
  std::uint64_t v = static_cast<std::uint64_t>(value_ns);
  while (v > 1) {
    v >>= 1;
    ++bucket;
  }
  return std::min(bucket, internal::MetricCell::kBuckets - 1);
}

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Relaxed CAS min/max update for histogram cells.
template <typename Cmp>
void AtomicExtremum(std::atomic<std::int64_t>& cell, std::int64_t v,
                    Cmp better) {
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (better(v, cur) &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

// Renders {k="v",...} including an optional extra label (histogram `le`).
void AppendLabels(std::string& out, const Labels& labels,
                  const char* extra_key = nullptr,
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(out, v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    AppendEscaped(out, extra_value);
    out += '"';
  }
  out += '}';
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void Gauge::Set(double v) {
  if (cell_ != nullptr) {
    cell_->value.store(DoubleBits(v), std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) {
  if (cell_ == nullptr) return;
  std::uint64_t cur = cell_->value.load(std::memory_order_relaxed);
  while (!cell_->value.compare_exchange_weak(
      cur, DoubleBits(BitsDouble(cur) + delta), std::memory_order_relaxed)) {
  }
}

double Gauge::Value() const {
  return cell_ == nullptr
             ? 0.0
             : BitsDouble(cell_->value.load(std::memory_order_relaxed));
}

void Histogram::Record(std::int64_t value_ns) {
  if (cell_ == nullptr) return;
  if (value_ns < 1) value_ns = 1;
  (*cell_->buckets)[BucketFor(value_ns)].fetch_add(1,
                                                   std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->sum.fetch_add(value_ns, std::memory_order_relaxed);
  AtomicExtremum(cell_->max, value_ns, std::greater<std::int64_t>());
  AtomicExtremum(cell_->min, value_ns, std::less<std::int64_t>());
}

std::uint64_t Histogram::Count() const {
  return cell_ == nullptr ? 0 : cell_->count.load(std::memory_order_relaxed);
}

LatencyHistogram Histogram::Snapshot() const {
  if (cell_ == nullptr) return LatencyHistogram();
  std::array<std::uint64_t, internal::MetricCell::kBuckets> buckets;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] = (*cell_->buckets)[b].load(std::memory_order_relaxed);
  }
  // Concurrent Record()s make the scalar reads racy-by-design snapshots;
  // count is recomputed from the bucket reads so the histogram stays
  // internally consistent.
  return LatencyHistogram::FromBuckets(
      buckets.data(), buckets.size(),
      cell_->sum.load(std::memory_order_relaxed),
      cell_->min.load(std::memory_order_relaxed),
      cell_->max.load(std::memory_order_relaxed));
}

internal::MetricCell* MetricsRegistry::FindOrCreate(const std::string& name,
                                                    const std::string& help,
                                                    const Labels& labels,
                                                    MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (internal::MetricCell& cell : cells_) {
    if (cell.name == name && cell.labels == labels) {
      if (cell.kind != kind) return nullptr;  // kind mismatch: unbound
      if (cell.help.empty() && !help.empty()) cell.help = help;
      return &cell;
    }
  }
  internal::MetricCell& cell = cells_.emplace_back();
  cell.name = name;
  cell.help = help;
  cell.labels = labels;
  cell.kind = kind;
  if (kind == MetricKind::kHistogram) {
    cell.buckets = std::make_unique<
        std::array<std::atomic<std::uint64_t>, internal::MetricCell::kBuckets>>();
    for (auto& bucket : *cell.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell.min.store(std::numeric_limits<std::int64_t>::max(),
                   std::memory_order_relaxed);
  }
  return &cell;
}

Counter MetricsRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const Labels& labels) {
  return Counter(FindOrCreate(name, help, labels, MetricKind::kCounter));
}

Gauge MetricsRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const Labels& labels) {
  return Gauge(FindOrCreate(name, help, labels, MetricKind::kGauge));
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels) {
  return Histogram(FindOrCreate(name, help, labels, MetricKind::kHistogram));
}

std::size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (internal::MetricCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
    if (cell.kind == MetricKind::kHistogram) {
      cell.min.store(std::numeric_limits<std::int64_t>::max(),
                     std::memory_order_relaxed);
      for (auto& bucket : *cell.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
    } else {
      cell.min.store(0, std::memory_order_relaxed);
    }
  }
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(cells_.size() * 96);
  std::string last_family;
  for (const internal::MetricCell& cell : cells_) {
    // One HELP/TYPE header per family; instances of the same name are
    // registered adjacently in practice (the registry preserves insertion
    // order), so a simple "name changed" check suffices.
    if (cell.name != last_family) {
      last_family = cell.name;
      if (!cell.help.empty()) {
        out += "# HELP " + cell.name + " " + cell.help + "\n";
      }
      out += "# TYPE " + cell.name + " ";
      out += MetricKindName(cell.kind);
      out += '\n';
    }
    switch (cell.kind) {
      case MetricKind::kCounter: {
        out += cell.name;
        AppendLabels(out, cell.labels);
        out += ' ';
        out += std::to_string(cell.value.load(std::memory_order_relaxed));
        out += '\n';
        break;
      }
      case MetricKind::kGauge: {
        out += cell.name;
        AppendLabels(out, cell.labels);
        out += ' ';
        out += FormatDouble(
            BitsDouble(cell.value.load(std::memory_order_relaxed)));
        out += '\n';
        break;
      }
      case MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        std::size_t top = internal::MetricCell::kBuckets;
        while (top > 0 && (*cell.buckets)[top - 1].load(
                              std::memory_order_relaxed) == 0) {
          --top;
        }
        for (std::size_t b = 0; b < top; ++b) {
          cumulative += (*cell.buckets)[b].load(std::memory_order_relaxed);
          out += cell.name;
          out += "_bucket";
          // Bucket b holds values in [2^b, 2^(b+1)); its inclusive upper
          // bound is (2 << b) - 1 (bucket 0 holds v <= 1).
          AppendLabels(out, cell.labels, "le",
                       std::to_string((2ULL << b) - 1));
          out += ' ';
          out += std::to_string(cumulative);
          out += '\n';
        }
        out += cell.name;
        out += "_bucket";
        AppendLabels(out, cell.labels, "le", "+Inf");
        out += ' ';
        out += std::to_string(cell.count.load(std::memory_order_relaxed));
        out += '\n';
        out += cell.name;
        out += "_sum";
        AppendLabels(out, cell.labels);
        out += ' ';
        out += std::to_string(cell.sum.load(std::memory_order_relaxed));
        out += '\n';
        out += cell.name;
        out += "_count";
        AppendLabels(out, cell.labels);
        out += ' ';
        out += std::to_string(cell.count.load(std::memory_order_relaxed));
        out += '\n';
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace apollo::obs
