// Lightweight scoped span tracing with Chrome trace_event JSON export.
//
// Usage on an instrumented path:
//
//   void Broker::Publish(...) {
//     TRACE_SPAN("broker.publish", handle.name());
//     ...
//   }
//
// When tracing is disabled (the default) a span costs one relaxed atomic
// load. When enabled, spans are recorded into fixed-capacity per-thread
// ring buffers (oldest spans overwritten), so recording never allocates on
// the hot path and never blocks one thread on another. ExportChromeTrace()
// snapshots every thread's ring into the Chrome trace_event JSON format —
// load the file in chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps come from the recorder's clock, which defaults to the
// process-wide RealClock but can be pointed at a SimClock so traces (and
// the tests over them) are fully deterministic: a span's ts/dur then move
// only when simulated time is advanced or charged.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace apollo::obs {

// Process-wide tracing switch. An inline variable (one instance across all
// TUs, no function-local-static guard) so the disabled-path check in
// TraceSpan compiles down to a single inlined relaxed load + branch instead
// of an out-of-line call into TraceRecorder::Global(). Flip it only through
// TraceRecorder::Enable()/Disable().
inline std::atomic<bool> g_trace_enabled{false};

// One completed span. Fixed-size (the detail is truncated into an inline
// buffer) so ring slots are assignment-only — no allocation at record time.
struct SpanRecord {
  static constexpr std::size_t kDetailCapacity = 48;

  // Deliberately trivially-constructible (no default member initializers):
  // TraceSpan embeds a SpanRecord and fills every field only when tracing
  // is enabled, so a span constructed on a disabled hot path writes nothing
  // at all. Only records that passed through Record() are ever read back.
  const char* name;  // static string (macro literal)
  char detail[kDetailCapacity];
  TimeNs start;
  TimeNs dur;
  std::uint32_t depth;  // nesting depth on the recording thread

  std::string_view detail_view() const {
    return std::string_view(detail, ::strnlen(detail, kDetailCapacity));
  }
};

class TraceRecorder {
 public:
  // Spans kept per thread; older spans are overwritten.
  static constexpr std::size_t kRingCapacity = 8192;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  void Enable() { g_trace_enabled.store(true, std::memory_order_release); }
  void Disable() { g_trace_enabled.store(false, std::memory_order_release); }
  bool enabled() const {
    return g_trace_enabled.load(std::memory_order_relaxed);
  }

  // Points timestamps at `clock` (null restores the RealClock). The clock
  // must outlive its installation; ApolloService installs its SimClock in
  // simulated mode and uninstalls it on destruction.
  void SetClock(Clock* clock) {
    clock_.store(clock, std::memory_order_release);
  }
  Clock* clock() const { return clock_.load(std::memory_order_acquire); }

  TimeNs Now() const;

  // Records a completed span into the calling thread's ring.
  void Record(const SpanRecord& span);

  // Spans currently retained across all thread rings.
  std::size_t SpanCount() const;

  // Total spans ever recorded (including ones the rings have overwritten).
  std::uint64_t TotalRecorded() const;

  // Drops every retained span (rings stay registered).
  void Clear();

  // Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...},...]}.
  // Complete events carry ts/dur in microseconds (fractional, so
  // nanosecond precision survives); tid is a small per-thread ordinal.
  std::string ExportChromeTrace() const;

  // Nesting depth bookkeeping for the calling thread (used by TraceSpan).
  static std::uint32_t EnterSpan();
  static void ExitSpan();

 private:
  TraceRecorder() = default;

  struct ThreadRing {
    std::mutex mu;
    std::vector<SpanRecord> slots;
    std::size_t size = 0;   // live spans (<= capacity)
    std::size_t next = 0;   // ring write position
    std::uint64_t total = 0;
    std::uint32_t tid = 0;
  };

  ThreadRing& RingForThisThread();

  std::atomic<Clock*> clock_{nullptr};

  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::uint32_t next_tid_ = 1;
};

// RAII span: stamps the start on construction, records on destruction.
// Constructing while tracing is disabled records nothing (and skips the
// clock read); a trace enabled mid-span records nothing for that span.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::string_view detail = {}) {
    // Fast path: one inlined relaxed load. Reaching Global() (a function
    // call) only happens once tracing is actually on.
    if (!g_trace_enabled.load(std::memory_order_relaxed)) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    active_ = true;
    span_.name = name;
    const std::size_t n =
        std::min(detail.size(), SpanRecord::kDetailCapacity - 1);
    if (n > 0) std::memcpy(span_.detail, detail.data(), n);
    span_.detail[n] = '\0';
    span_.depth = TraceRecorder::EnterSpan();
    span_.start = recorder.Now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (!active_) return;
    TraceRecorder& recorder = TraceRecorder::Global();
    span_.dur = recorder.Now() - span_.start;
    if (span_.dur < 0) span_.dur = 0;
    TraceRecorder::ExitSpan();
    recorder.Record(span_);
  }

 private:
  bool active_ = false;
  SpanRecord span_;
};

#define APOLLO_TRACE_CONCAT_(a, b) a##b
#define APOLLO_TRACE_CONCAT(a, b) APOLLO_TRACE_CONCAT_(a, b)

// TRACE_SPAN("broker.publish") or TRACE_SPAN("broker.publish", topic).
#define TRACE_SPAN(...)                                        \
  ::apollo::obs::TraceSpan APOLLO_TRACE_CONCAT(trace_span_,    \
                                               __COUNTER__) { \
    __VA_ARGS__                                                \
  }

}  // namespace apollo::obs
