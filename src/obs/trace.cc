#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace apollo::obs {

namespace {

// Per-thread nesting depth. Kept outside ThreadRing so EnterSpan/ExitSpan
// stay static (no recorder lookup while a span opens).
thread_local std::uint32_t t_depth = 0;

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with nanosecond precision, trailing zeros kept simple.
std::string FormatUs(TimeNs ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TimeNs TraceRecorder::Now() const {
  Clock* clock = clock_.load(std::memory_order_acquire);
  return clock != nullptr ? clock->Now() : RealClock::Instance().Now();
}

std::uint32_t TraceRecorder::EnterSpan() { return t_depth++; }

void TraceRecorder::ExitSpan() {
  if (t_depth > 0) --t_depth;
}

TraceRecorder::ThreadRing& TraceRecorder::RingForThisThread() {
  // The shared_ptr keeps a ring alive in the recorder's list even after
  // its thread exits, so spans from finished workers survive into the
  // export.
  thread_local std::shared_ptr<ThreadRing> ring = [this] {
    auto fresh = std::make_shared<ThreadRing>();
    fresh->slots.resize(kRingCapacity);
    std::lock_guard<std::mutex> lock(rings_mu_);
    fresh->tid = next_tid_++;
    rings_.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

void TraceRecorder::Record(const SpanRecord& span) {
  ThreadRing& ring = RingForThisThread();
  std::lock_guard<std::mutex> lock(ring.mu);  // uncontended except vs export
  ring.slots[ring.next] = span;
  ring.next = (ring.next + 1) % ring.slots.size();
  ring.size = std::min(ring.size + 1, ring.slots.size());
  ++ring.total;
}

std::size_t TraceRecorder::SpanCount() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::size_t count = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    count += ring->size;
  }
  return count;
}

std::uint64_t TraceRecorder::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->total;
  }
  return total;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->size = 0;
    ring->next = 0;
  }
}

std::string TraceRecorder::ExportChromeTrace() const {
  struct Snapshot {
    SpanRecord span;
    std::uint32_t tid;
  };
  std::vector<Snapshot> spans;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      // Oldest-first: the ring holds `size` spans ending at `next`.
      const std::size_t capacity = ring->slots.size();
      std::size_t idx = (ring->next + capacity - ring->size) % capacity;
      for (std::size_t i = 0; i < ring->size; ++i) {
        spans.push_back({ring->slots[idx], ring->tid});
        idx = (idx + 1) % capacity;
      }
    }
  }
  // Chrome sorts internally, but a ts-ordered file is stable for golden
  // tests and friendlier to other tooling. Ties broken by depth so parents
  // precede their children.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Snapshot& a, const Snapshot& b) {
                     if (a.span.start != b.span.start) {
                       return a.span.start < b.span.start;
                     }
                     return a.span.depth < b.span.depth;
                   });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Snapshot& snap : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, snap.span.name);
    out += "\",\"cat\":\"apollo\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(snap.tid);
    out += ",\"ts\":";
    out += FormatUs(snap.span.start);
    out += ",\"dur\":";
    out += FormatUs(snap.span.dur);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(snap.span.depth);
    if (snap.span.detail[0] != '\0') {
      out += ",\"detail\":\"";
      AppendJsonEscaped(out, snap.span.detail_view());
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace apollo::obs
