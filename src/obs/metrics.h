// Process-wide metrics registry: named + labeled counters, gauges, and
// log-bucketed histograms, with Prometheus-style text exposition.
//
// Hot-path contract: a call site resolves its metric ONCE (at deploy/plan
// time, or in a function-local static) into a Counter/Gauge/Histogram
// handle — a bare pointer into registry-owned storage, the same caching
// idiom TopicHandle uses for broker lookups. Every subsequent update is a
// relaxed atomic on that cell: no locks, no map lookups, no allocation.
// The registry mutex is taken only at registration and exposition time.
//
// Cells live in a std::deque so registration never invalidates handles;
// registering the same (name, labels) pair twice returns the same cell,
// so independent call sites (and the TelemetryCounters façade) can share
// a metric without coordinating.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace apollo::obs {

// Label set attached to a metric instance ({key, value} pairs). Order is
// preserved in the exposition output; two label sets are the same instance
// only when they serialize identically.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

namespace internal {

// One registered instance (metric name + one label set). The atomic cells
// are stable for the process lifetime.
struct MetricCell {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;

  // Counter / gauge storage. Gauges store the double's bit pattern so the
  // cell stays a plain atomic (no atomic<double> CAS loops on load/store).
  std::atomic<std::uint64_t> value{0};

  // Histogram storage: log2 buckets matching LatencyHistogram (bucket b
  // holds values in [2^b, 2^(b+1)), bucket 0 holds <= 1), plus running
  // count/sum and min/max maintained with relaxed CAS.
  static constexpr std::size_t kBuckets = 64;
  std::unique_ptr<std::array<std::atomic<std::uint64_t>, kBuckets>> buckets;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> min{0};  // valid only when count > 0
  std::atomic<std::int64_t> max{0};
};

}  // namespace internal

// Monotonic counter handle. Default-constructed handles are "unbound" and
// drop updates — convenient for optional instrumentation.
class Counter {
 public:
  Counter() = default;

  void Inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return cell_ == nullptr ? 0 : cell_->value.load(std::memory_order_relaxed);
  }

  // std::atomic-compatible surface so call sites written against the old
  // TelemetryCounters atomics keep compiling unchanged.
  std::uint64_t fetch_add(std::uint64_t n,
                          std::memory_order = std::memory_order_relaxed) {
    if (cell_ == nullptr) return 0;
    return cell_->value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t load(std::memory_order = std::memory_order_relaxed) const {
    return Value();
  }
  void store(std::uint64_t v,
             std::memory_order = std::memory_order_relaxed) {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  Counter& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::MetricCell* cell) : cell_(cell) {}
  internal::MetricCell* cell_ = nullptr;
};

// Gauge handle: a settable double (latest value wins).
class Gauge {
 public:
  Gauge() = default;

  void Set(double v);
  void Add(double delta);  // CAS loop; fine for low-rate gauges
  double Value() const;

  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::MetricCell* cell) : cell_(cell) {}
  internal::MetricCell* cell_ = nullptr;
};

// Log-bucketed histogram handle (same bucketing as LatencyHistogram).
// Record() is a handful of relaxed atomics; Snapshot() materializes a
// LatencyHistogram for percentile queries and summaries.
class Histogram {
 public:
  Histogram() = default;

  void Record(std::int64_t value_ns);
  std::uint64_t Count() const;
  LatencyHistogram Snapshot() const;

  bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::MetricCell* cell) : cell_(cell) {}
  internal::MetricCell* cell_ = nullptr;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration: returns a stable handle; the same (name, labels) pair
  // always resolves to the same cell. `help` is recorded on first
  // registration. Registering one name under two different kinds is a
  // programming error; the first kind wins and the mismatched handle is
  // unbound.
  Counter GetCounter(const std::string& name, const std::string& help = "",
                     const Labels& labels = {});
  Gauge GetGauge(const std::string& name, const std::string& help = "",
                 const Labels& labels = {});
  Histogram GetHistogram(const std::string& name,
                         const std::string& help = "",
                         const Labels& labels = {});

  // Prometheus text exposition format: one # HELP / # TYPE block per
  // family, histograms as cumulative _bucket{le=...} plus _sum/_count.
  std::string RenderPrometheus() const;

  std::size_t MetricCount() const;

  // Zeroes every registered cell (tests; exposition scrapes are
  // non-destructive).
  void ResetAllForTest();

  // Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

 private:
  internal::MetricCell* FindOrCreate(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels, MetricKind kind);

  mutable std::mutex mu_;
  std::deque<internal::MetricCell> cells_;  // stable addresses
};

}  // namespace apollo::obs
