// Single-producer single-consumer lock-free ring buffer.
//
// Used inside SCoRe vertices where exactly one builder thread publishes and
// one queue-drain thread consumes (the common fast path in the paper's
// Fact/Insight vertex design).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace apollo {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Returns false when full.
  bool TryPush(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) return false;
    buffer_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Returns nullopt when empty.
  std::optional<T> TryPop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    T value = std::move(buffer_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  std::size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }
  std::size_t Capacity() const { return mask_ + 1; }

 private:
  // 64 bytes covers current x86/ARM cache lines; the standard constant
  // emits -Winterference-size and is ABI-unstable, so we fix it.
  static constexpr std::size_t kCacheLine = 64;

  std::vector<T> buffer_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace apollo
