// Bounded multi-producer multi-consumer lock-free queue (Vyukov scheme).
//
// Backs the pub-sub broker's ingestion path where many client threads
// publish concurrently into one stream (Figure 6's publish scaling test).
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

namespace apollo {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  bool TryPush(T value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> TryPop() {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T value = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

  std::size_t Capacity() const { return mask_ + 1; }

  std::size_t SizeApprox() const {
    const std::size_t e = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t d = dequeue_pos_.load(std::memory_order_acquire);
    return e >= d ? e - d : 0;
  }

 private:
  // 64 bytes covers current x86/ARM cache lines; the standard constant
  // emits -Winterference-size and is ABI-unstable, so we fix it.
  static constexpr std::size_t kCacheLine = 64;

  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLine) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace apollo
