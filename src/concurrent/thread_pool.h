// Fixed-size thread pool with a futures-based Submit API.
//
// The AQE executes query fragments on this pool; the cluster simulator uses
// it to run per-node activity concurrently.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace apollo {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` and returns a future for its result.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::Submit after shutdown");
      }
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  // Blocks until the queue is empty and all workers are idle.
  void Drain();

  std::size_t NumThreads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace apollo
