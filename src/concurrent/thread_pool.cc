#include "concurrent/thread_pool.h"

namespace apollo {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace apollo
