#include "pubsub/wal_format.h"

#include <array>
#include <cstring>

namespace apollo::wal {

namespace {

// Byte-at-a-time CRC32C table (poly 0x82F63B78, reflected).
constexpr std::array<std::uint32_t, 256> kCrcTable = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}();

void PutU32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t GetU32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kCrcTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void EncodeHeader(std::uint8_t* out, std::uint32_t payload_size) {
  PutU32(out, kMagic);
  PutU32(out + 4, kVersion);
  PutU32(out + 8, payload_size);
  PutU32(out + 12, Crc32c(out, 12));
}

bool DecodeHeader(const std::uint8_t* data, std::size_t size,
                  std::uint32_t* payload_size) {
  if (size < kHeaderSize) return false;
  if (GetU32(data) != kMagic) return false;
  if (GetU32(data + 4) != kVersion) return false;
  if (GetU32(data + 12) != Crc32c(data, 12)) return false;
  const std::uint32_t hint = GetU32(data + 8);
  if (hint > kMaxRecordLen) return false;
  if (payload_size != nullptr) *payload_size = hint;
  return true;
}

std::size_t EncodeRecord(std::uint8_t* out, const void* payload,
                         std::uint32_t len) {
  PutU32(out, len);
  PutU32(out + 4, Crc32c(payload, len));
  std::memcpy(out + kFrameOverhead, payload, len);
  return kFrameOverhead + len;
}

ScanResult ScanBuffer(
    const std::uint8_t* data, std::size_t size,
    const std::function<void(const std::uint8_t* payload,
                             std::uint32_t len)>& visit) {
  ScanResult result;
  std::uint32_t payload_size = 0;
  if (!DecodeHeader(data, size, &payload_size)) {
    result.dropped_bytes = size;
    return result;
  }
  result.header_ok = true;
  std::size_t pos = kHeaderSize;
  while (size - pos >= kFrameOverhead) {
    const std::uint32_t len = GetU32(data + pos);
    if (len > kMaxRecordLen) break;
    if (payload_size != 0 && len != payload_size) break;
    if (size - pos - kFrameOverhead < len) break;  // torn tail
    const std::uint8_t* payload = data + pos + kFrameOverhead;
    if (GetU32(data + pos + 4) != Crc32c(payload, len)) break;
    if (visit) visit(payload, len);
    ++result.records;
    pos += kFrameOverhead + len;
  }
  result.valid_bytes = pos;
  result.dropped_bytes = size - pos;
  result.clean = result.dropped_bytes == 0;
  return result;
}

}  // namespace apollo::wal
