#include "pubsub/telemetry.h"

namespace apollo {

obs::Counter TelemetryCounters::Reg(const char* field, const char* metric,
                                    const char* help) {
  obs::Counter counter =
      obs::MetricsRegistry::Global().GetCounter(metric, help);
  fields_.emplace_back(field, counter);
  return counter;
}

TelemetryCounters::TelemetryCounters() {
  publishes = Reg("publishes", "apollo_publishes_total",
                  "Broker publishes attempted");
  publish_drops = Reg("publish_drops", "apollo_publish_drops_total",
                      "Publishes dropped by injected faults");
  publish_retries = Reg("publish_retries", "apollo_publish_retries_total",
                        "Publish backoff retries");
  publish_failures = Reg("publish_failures", "apollo_publish_failures_total",
                         "Publishes failed after retries");
  fetch_timeouts = Reg("fetch_timeouts", "apollo_fetch_timeouts_total",
                       "Fetches timed out by injected faults");
  fetch_retries = Reg("fetch_retries", "apollo_fetch_retries_total",
                      "Fetch backoff retries");
  fetch_failures = Reg("fetch_failures", "apollo_fetch_failures_total",
                       "Fetches failed after retries");
  archive_writes = Reg("archive_writes", "apollo_archive_writes_total",
                       "Archive records appended");
  archive_retries = Reg("archive_retries", "apollo_archive_retries_total",
                        "Archive append backoff retries");
  archive_write_failures =
      Reg("archive_write_failures", "apollo_archive_write_failures_total",
          "Archive appends failed after retries");
  archive_write_errors =
      Reg("archive_write_errors", "apollo_archive_write_errors_total",
          "Archive write/flush/fsync errors before retry");
  archive_fsyncs = Reg("archive_fsyncs", "apollo_archive_fsyncs_total",
                       "Archive segment fsyncs issued");
  archive_fsync_failures =
      Reg("archive_fsync_failures", "apollo_archive_fsync_failures_total",
          "Archive segment fsync failures");
  archive_rotations = Reg("archive_rotations",
                          "apollo_archive_rotations_total",
                          "Archive segment rotations");
  archive_read_errors =
      Reg("archive_read_errors", "apollo_archive_read_errors_total",
          "Archive scans that failed on the query path");
  archive_recovered_records =
      Reg("archive_recovered_records", "apollo_archive_recovered_records_total",
          "Valid records recovered by startup WAL scans");
  archive_truncated_bytes =
      Reg("archive_truncated_bytes", "apollo_archive_truncated_bytes_total",
          "Torn/corrupt tail bytes truncated at startup");
  archive_corrupt_segments =
      Reg("archive_corrupt_segments", "apollo_archive_corrupt_segments_total",
          "Segments with any truncation or quarantine");
  archive_quarantined_segments =
      Reg("archive_quarantined_segments",
          "apollo_archive_quarantined_segments_total",
          "Segments renamed *.corrupt on open");
  vertex_crashes = Reg("vertex_crashes", "apollo_vertex_crashes_total",
                       "SCoRe vertex crashes observed");
  vertex_stalls = Reg("vertex_stalls", "apollo_vertex_stalls_total",
                      "Silent vertex stalls converted to crashes");
  vertex_restarts = Reg("vertex_restarts", "apollo_vertex_restarts_total",
                        "Supervisor restarts issued");
  vertex_give_ups = Reg("vertex_give_ups", "apollo_vertex_give_ups_total",
                        "Vertices given up on after max restarts");
  degraded_marked = Reg("degraded_marked", "apollo_degraded_marked_total",
                        "Streams marked degraded");
  degraded_cleared = Reg("degraded_cleared", "apollo_degraded_cleared_total",
                         "Streams cleared from degraded");
  stream_evictions = Reg("stream_evictions", "apollo_stream_evictions_total",
                         "Window entries evicted to an archiver");
  net_bytes_sent = Reg("net_bytes_sent", "apollo_net_bytes_sent_total",
                       "Wire bytes written to sockets");
  net_bytes_received =
      Reg("net_bytes_received", "apollo_net_bytes_received_total",
          "Wire bytes read from sockets");
  net_messages_sent = Reg("net_messages_sent", "apollo_net_messages_sent_total",
                          "Wire frames sent");
  net_messages_received =
      Reg("net_messages_received", "apollo_net_messages_received_total",
          "Wire frames received and dispatched");
  net_connections_opened =
      Reg("net_connections_opened", "apollo_net_connections_opened_total",
          "Connections accepted or established");
  net_connections_closed =
      Reg("net_connections_closed", "apollo_net_connections_closed_total",
          "Connections closed (any reason)");
  net_conn_drops = Reg("net_conn_drops", "apollo_net_conn_drops_total",
                       "Connections dropped by injected kConnDrop faults");
  net_send_failures =
      Reg("net_send_failures", "apollo_net_send_failures_total",
          "Frame sends failed (injected or socket error)");
  net_recv_drops = Reg("net_recv_drops", "apollo_net_recv_drops_total",
                       "Received frames dropped by injected kNetRecv faults");
  net_protocol_errors =
      Reg("net_protocol_errors", "apollo_net_protocol_errors_total",
          "Connections closed on bad magic/version/CRC");
  net_backpressure_skips =
      Reg("net_backpressure_skips", "apollo_net_backpressure_skips_total",
          "Subscription deliveries skipped: outbound queue full");
  net_idle_closes = Reg("net_idle_closes", "apollo_net_idle_closes_total",
                        "Connections reaped by the idle timeout");
  net_node_timeouts =
      Reg("net_node_timeouts", "apollo_net_node_timeouts_total",
          "Scatter-gather node queries past their deadline");
  net_degraded_fallbacks =
      Reg("net_degraded_fallbacks", "apollo_net_degraded_fallbacks_total",
          "Node answers served from last-known-good cache");
  net_batch_publishes =
      Reg("net_batch_publishes", "apollo_net_batch_publishes_total",
          "Batch publish frames handled by daemons");
  net_batch_samples =
      Reg("net_batch_samples", "apollo_net_batch_samples_total",
          "Samples carried in batch publish frames");
  net_batch_decode_errors =
      Reg("net_batch_decode_errors", "apollo_net_batch_decode_errors_total",
          "Batch publish frames rejected before handoff");
  net_batch_sample_errors =
      Reg("net_batch_sample_errors", "apollo_net_batch_sample_errors_total",
          "Per-sample batch failures reported in ack bitmaps");
  net_shm_attaches = Reg("net_shm_attaches", "apollo_net_shm_attaches_total",
                         "Shared-memory ingest lanes accepted by daemons");
  net_shm_attach_failures =
      Reg("net_shm_attach_failures", "apollo_net_shm_attach_failures_total",
          "Shared-memory lane handshakes refused or failed");
  net_shm_samples = Reg("net_shm_samples", "apollo_net_shm_samples_total",
                        "Samples drained from shared-memory ingest rings");
  net_shm_fallbacks =
      Reg("net_shm_fallbacks", "apollo_net_shm_fallbacks_total",
          "Samples rerouted to TCP because the shm lane was full or down");
  net_shm_orphans_reaped =
      Reg("net_shm_orphans_reaped", "apollo_net_shm_orphans_reaped_total",
          "Orphaned shm lane segments unlinked after their producer died");
  cluster_heartbeats_sent =
      Reg("cluster_heartbeats_sent", "apollo_cluster_heartbeats_sent_total",
          "Membership probes sent to peers");
  cluster_heartbeat_failures =
      Reg("cluster_heartbeat_failures",
          "apollo_cluster_heartbeat_failures_total",
          "Membership probe round-trips that failed or were dropped");
  cluster_peer_suspects =
      Reg("cluster_peer_suspects", "apollo_cluster_peer_suspects_total",
          "Peer transitions from alive to suspect");
  cluster_peer_deaths =
      Reg("cluster_peer_deaths", "apollo_cluster_peer_deaths_total",
          "Peer transitions to dead (failed over)");
  cluster_peer_recoveries =
      Reg("cluster_peer_recoveries", "apollo_cluster_peer_recoveries_total",
          "Dead peers observed again (restart or partition heal)");
  cluster_map_pushes =
      Reg("cluster_map_pushes", "apollo_cluster_map_pushes_total",
          "Cluster map pushes to connected clients on membership change");
  cluster_forwarded_publishes =
      Reg("cluster_forwarded_publishes",
          "apollo_cluster_forwarded_publishes_total",
          "Publish runs proxied to the topic's primary");
  cluster_replication_batches =
      Reg("cluster_replication_batches",
          "apollo_cluster_replication_batches_total",
          "Replicate round-trips sent to secondaries");
  cluster_replication_failures =
      Reg("cluster_replication_failures",
          "apollo_cluster_replication_failures_total",
          "Replicate round-trips that failed or were refused");
  cluster_quorum_failures =
      Reg("cluster_quorum_failures", "apollo_cluster_quorum_failures_total",
          "Publish runs NACKed because the write quorum was not met");
  cluster_resync_topics =
      Reg("cluster_resync_topics", "apollo_cluster_resync_topics_total",
          "Topics caught up from a peer during resync");
  cluster_resync_entries =
      Reg("cluster_resync_entries", "apollo_cluster_resync_entries_total",
          "Entries copied from peers during resync");
}

void TelemetryCounters::Reset() {
  for (auto& [name, counter] : fields_) counter.store(0);
}

TelemetryCounters& GlobalTelemetry() {
  static TelemetryCounters* counters = new TelemetryCounters();
  return *counters;
}

}  // namespace apollo
