#include "pubsub/broker.h"

#include <algorithm>

#include "obs/trace.h"

namespace apollo {

Expected<TelemetryStream*> Broker::CreateTopic(const std::string& name,
                                               NodeId home_node,
                                               std::size_t capacity,
                                               Archiver<Sample>* archiver) {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto [it, inserted] = stripe.topics.try_emplace(name);
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists, "topic exists: " + name);
  }
  it->second.info = TopicInfo{name, home_node};
  it->second.stream = std::make_unique<TelemetryStream>(capacity, archiver);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return it->second.stream.get();
}

Expected<TelemetryStream*> Broker::GetTopic(const std::string& name) const {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.topics.find(name);
  if (it == stripe.topics.end()) {
    return Error(ErrorCode::kNotFound, "no such topic: " + name);
  }
  return it->second.stream.get();
}

Status Broker::RestoreTopic(
    const std::string& name,
    const std::vector<TelemetryStream::Entry>& entries) {
  auto stream = GetTopic(name);
  if (!stream.ok()) return stream.status();
  return stream.value()->RestoreWindow(entries);
}

Status Broker::RestoreTopicFromPeer(
    const std::string& name,
    const std::vector<TelemetryStream::Entry>& entries) {
  auto stream = GetTopic(name);
  if (!stream.ok()) return stream.status();
  return stream.value()->RestoreWindowAt(entries);
}

Expected<TelemetryStream*> Broker::EnsureTopic(const std::string& name,
                                               NodeId home_node,
                                               std::size_t capacity,
                                               Archiver<Sample>* archiver) {
  {
    Stripe& stripe = StripeFor(name);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.topics.find(name);
    if (it != stripe.topics.end()) return it->second.stream.get();
  }
  auto created = CreateTopic(name, home_node, capacity, archiver);
  if (created.ok()) return created;
  if (created.error().code() == ErrorCode::kAlreadyExists) {
    return GetTopic(name);  // lost a creation race: use the winner's
  }
  return created;
}

Expected<TopicHandle> Broker::Resolve(const std::string& name) const {
  // Read the version before the lookup: a topic created/removed after this
  // load at worst leaves the handle conservatively stale (it re-resolves on
  // first use), never wrongly fresh.
  const std::uint64_t version = version_.load(std::memory_order_acquire);
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.topics.find(name);
  if (it == stripe.topics.end()) {
    return Error(ErrorCode::kNotFound, "no such topic: " + name);
  }
  return TopicHandle(name, it->second.stream.get(),
                     it->second.info.home_node, version);
}

Status Broker::RemoveTopic(const std::string& name) {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.topics.erase(name) == 0) {
    return Status(ErrorCode::kNotFound, "no such topic: " + name);
  }
  version_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& name) const {
  Stripe& stripe = StripeFor(name);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.topics.count(name) > 0;
}

std::vector<TopicInfo> Broker::ListTopics() const {
  std::vector<TopicInfo> out;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [name, topic] : stripe.topics) {
      out.push_back(topic.info);
    }
  }
  return out;
}

Expected<std::uint64_t> Broker::Publish(const std::string& topic,
                                        NodeId from_node, TimeNs timestamp,
                                        const Sample& sample) {
  auto handle = Resolve(topic);
  if (!handle.ok()) return handle.error();
  return Publish(*handle, from_node, timestamp, sample);
}

Expected<std::vector<TelemetryStream::Entry>> Broker::Fetch(
    const std::string& topic, NodeId to_node, std::uint64_t& cursor,
    std::size_t max_entries) {
  auto handle = Resolve(topic);
  if (!handle.ok()) return handle.error();
  return Fetch(*handle, to_node, cursor, max_entries);
}

Expected<Sample> Broker::LatestValue(const std::string& topic,
                                     NodeId to_node) {
  auto handle = Resolve(topic);
  if (!handle.ok()) return handle.error();
  return LatestValue(*handle, to_node);
}

Expected<std::uint64_t> Broker::Publish(TopicHandle& handle, NodeId from_node,
                                        TimeNs timestamp,
                                        const Sample& sample) {
  TRACE_SPAN("broker.publish", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  publishes_.fetch_add(1, std::memory_order_relaxed);
  status = EvaluateFault(FaultSite::kPublish, handle.name_);
  if (!status.ok()) {
    GlobalTelemetry().publish_drops.fetch_add(1, std::memory_order_relaxed);
    return Error(status.code(), status.message());
  }
  ChargeLatency(from_node, handle.home_);
  auto id = handle.stream_->Append(timestamp, sample);
  NotifyPublish(handle.name_, 1);
  return id;
}

Expected<Broker::BatchPublishResult> Broker::PublishBatch(
    TopicHandle& handle, NodeId from_node,
    const TelemetryStream::Entry* entries, std::size_t n,
    std::vector<std::uint8_t>* error_bits, std::size_t bitmap_base) {
  TRACE_SPAN("broker.publish_batch", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  publishes_.fetch_add(n, std::memory_order_relaxed);
  ChargeLatency(from_node, handle.home_);
  BatchPublishResult result;
  if (n == 0) return result;
  // Fast path: nothing armed — hand the whole run to the stream in one go.
  if (fault_.load(std::memory_order_acquire) == nullptr) {
    result.last_entry_id = handle.stream_->AppendBatch(entries, n);
    result.accepted = n;
    NotifyPublish(handle.name_, n);
    return result;
  }
  // Injector attached: evaluate kPublish per entry (exact chaos
  // accounting), compacting survivors so they still append under one lock.
  std::vector<TelemetryStream::Entry> accepted;
  accepted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Status verdict = EvaluateFault(FaultSite::kPublish, handle.name_);
    if (verdict.ok()) {
      accepted.push_back(entries[i]);
      continue;
    }
    GlobalTelemetry().publish_drops.fetch_add(1, std::memory_order_relaxed);
    if (result.first_error.empty()) {
      result.first_error_code = verdict.code();
      result.first_error = verdict.message();
    }
    if (error_bits != nullptr) {
      const std::size_t bit = bitmap_base + i;
      (*error_bits)[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
    }
  }
  if (!accepted.empty()) {
    result.last_entry_id =
        handle.stream_->AppendBatch(accepted.data(), accepted.size());
    NotifyPublish(handle.name_, accepted.size());
  }
  result.accepted = accepted.size();
  return result;
}

Expected<std::uint64_t> Broker::AppendReplicated(
    TopicHandle& handle, const TelemetryStream::Entry* entries,
    std::size_t n) {
  TRACE_SPAN("broker.append_replicated", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  publishes_.fetch_add(n, std::memory_order_relaxed);
  if (n == 0) return handle.stream_->NextId();
  auto last = handle.stream_->AppendBatch(entries, n);
  NotifyPublish(handle.name_, n);
  return last;
}

Expected<std::vector<TelemetryStream::Entry>> Broker::Fetch(
    TopicHandle& handle, NodeId to_node, std::uint64_t& cursor,
    std::size_t max_entries) {
  TRACE_SPAN("broker.fetch", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  status = EvaluateFault(FaultSite::kFetch, handle.name_);
  if (!status.ok()) {
    GlobalTelemetry().fetch_timeouts.fetch_add(1, std::memory_order_relaxed);
    return Error(status.code(), status.message());
  }
  ChargeLatency(handle.home_, to_node);
  return handle.stream_->Read(cursor, max_entries);
}

Expected<std::size_t> Broker::FetchInto(
    TopicHandle& handle, NodeId to_node, std::uint64_t& cursor,
    std::vector<TelemetryStream::Entry>& out, std::size_t max_entries) {
  TRACE_SPAN("broker.fetch", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  status = EvaluateFault(FaultSite::kFetch, handle.name_);
  if (!status.ok()) {
    GlobalTelemetry().fetch_timeouts.fetch_add(1, std::memory_order_relaxed);
    return Error(status.code(), status.message());
  }
  ChargeLatency(handle.home_, to_node);
  return handle.stream_->Read(cursor, out, max_entries);
}

Expected<Sample> Broker::LatestValue(TopicHandle& handle, NodeId to_node) {
  TRACE_SPAN("broker.latest", handle.name_);
  Status status = Refresh(handle);
  if (!status.ok()) return Error(status.code(), status.message());
  status = EvaluateFault(FaultSite::kFetch, handle.name_);
  if (!status.ok()) {
    GlobalTelemetry().fetch_timeouts.fetch_add(1, std::memory_order_relaxed);
    return Error(status.code(), status.message());
  }
  ChargeLatency(handle.home_, to_node);
  auto latest = handle.stream_->Latest();
  if (!latest.has_value()) {
    return Error(ErrorCode::kUnavailable, "topic empty: " + handle.name_);
  }
  return latest->value;
}

Expected<std::uint64_t> Broker::PublishWithRetry(TopicHandle& handle,
                                                 NodeId from_node,
                                                 TimeNs timestamp,
                                                 const Sample& sample,
                                                 const RetryPolicy& policy) {
  const TimeNs start = clock_.Now();
  auto result = Publish(handle, from_node, timestamp, sample);
  int attempt = 0;
  while (!result.ok() && RetryableError(result.error().code()) &&
         ++attempt < policy.max_attempts) {
    if (policy.deadline > 0 && clock_.Now() - start >= policy.deadline) break;
    GlobalTelemetry().publish_retries.fetch_add(1, std::memory_order_relaxed);
    clock_.Charge(JitteredBackoffForAttempt(policy, attempt));
    result = Publish(handle, from_node, timestamp, sample);
  }
  if (!result.ok()) {
    GlobalTelemetry().publish_failures.fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  return result;
}

Expected<std::size_t> Broker::FetchIntoWithRetry(
    TopicHandle& handle, NodeId to_node, std::uint64_t& cursor,
    std::vector<TelemetryStream::Entry>& out, std::size_t max_entries,
    const RetryPolicy& policy) {
  const TimeNs start = clock_.Now();
  auto result = FetchInto(handle, to_node, cursor, out, max_entries);
  int attempt = 0;
  while (!result.ok() && RetryableError(result.error().code()) &&
         ++attempt < policy.max_attempts) {
    if (policy.deadline > 0 && clock_.Now() - start >= policy.deadline) break;
    GlobalTelemetry().fetch_retries.fetch_add(1, std::memory_order_relaxed);
    clock_.Charge(JitteredBackoffForAttempt(policy, attempt));
    result = FetchInto(handle, to_node, cursor, out, max_entries);
  }
  if (!result.ok()) {
    GlobalTelemetry().fetch_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Status Broker::ChargeHop(TopicHandle& handle, NodeId node) {
  Status status = Refresh(handle);
  if (!status.ok()) return status;
  ChargeLatency(handle.home_, node);
  return Status::Ok();
}

Status Broker::ChargeHop(const std::string& topic, NodeId node) {
  auto handle = Resolve(topic);
  if (!handle.ok()) return handle.status();
  ChargeLatency(handle->home_node(), node);
  return Status::Ok();
}

NodeId Broker::HomeNode(const std::string& topic) const {
  Stripe& stripe = StripeFor(topic);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.topics.find(topic);
  return it == stripe.topics.end() ? kLocalNode
                                   : it->second.info.home_node;
}

Status Broker::Refresh(TopicHandle& handle) {
  if (handle.version_ == version_.load(std::memory_order_acquire) &&
      handle.stream_ != nullptr) {
    return Status::Ok();
  }
  if (handle.name_.empty()) {
    return Status(ErrorCode::kInvalidArgument, "unresolved topic handle");
  }
  auto resolved = Resolve(handle.name_);
  if (!resolved.ok()) {
    handle.stream_ = nullptr;
    return resolved.status();
  }
  handle = std::move(resolved.value());
  return Status::Ok();
}

void Broker::NotifyPublish(const std::string& topic, std::size_t n) {
  PublishObserver* observer =
      publish_observer_.load(std::memory_order_acquire);
  if (observer != nullptr) observer->OnPublish(topic, n);
}

void Broker::ChargeLatency(NodeId a, NodeId b) {
  if (network_ == nullptr) return;
  const TimeNs latency = network_->Latency(a, b);
  if (latency > 0) clock_.Charge(latency);
}

Status Broker::EvaluateFault(FaultSite site, const std::string& topic) {
  FaultInjector* injector = fault_.load(std::memory_order_acquire);
  if (injector == nullptr) return Status::Ok();
  auto action = injector->Evaluate(site, topic);
  if (!action.has_value()) return Status::Ok();
  if (!action->fails()) {
    clock_.Charge(action->delay_ns);
    return Status::Ok();
  }
  return Status(ErrorCode::kUnavailable,
                std::string("injected ") + FaultSiteName(site) +
                    " fault: " + topic);
}

}  // namespace apollo
