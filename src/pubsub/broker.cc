#include "pubsub/broker.h"

namespace apollo {

Expected<TelemetryStream*> Broker::CreateTopic(const std::string& name,
                                               NodeId home_node,
                                               std::size_t capacity,
                                               Archiver<Sample>* archiver) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = topics_.try_emplace(name);
  if (!inserted) {
    return Error(ErrorCode::kAlreadyExists, "topic exists: " + name);
  }
  it->second.info = TopicInfo{name, home_node};
  it->second.stream = std::make_unique<TelemetryStream>(capacity, archiver);
  return it->second.stream.get();
}

Expected<TelemetryStream*> Broker::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Error(ErrorCode::kNotFound, "no such topic: " + name);
  }
  return it->second.stream.get();
}

Status Broker::RemoveTopic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.erase(name) == 0) {
    return Status(ErrorCode::kNotFound, "no such topic: " + name);
  }
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.count(name) > 0;
}

std::vector<TopicInfo> Broker::ListTopics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TopicInfo> out;
  out.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) out.push_back(topic.info);
  return out;
}

Expected<std::uint64_t> Broker::Publish(const std::string& topic,
                                        NodeId from_node, TimeNs timestamp,
                                        const Sample& sample) {
  TelemetryStream* stream = nullptr;
  NodeId home = kLocalNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) {
      return Error(ErrorCode::kNotFound, "no such topic: " + topic);
    }
    stream = it->second.stream.get();
    home = it->second.info.home_node;
  }
  ChargeLatency(from_node, home);
  return stream->Append(timestamp, sample);
}

Expected<std::vector<TelemetryStream::Entry>> Broker::Fetch(
    const std::string& topic, NodeId to_node, std::uint64_t& cursor,
    std::size_t max_entries) {
  TelemetryStream* stream = nullptr;
  NodeId home = kLocalNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) {
      return Error(ErrorCode::kNotFound, "no such topic: " + topic);
    }
    stream = it->second.stream.get();
    home = it->second.info.home_node;
  }
  ChargeLatency(home, to_node);
  return stream->Read(cursor, max_entries);
}

Expected<Sample> Broker::LatestValue(const std::string& topic,
                                     NodeId to_node) {
  TelemetryStream* stream = nullptr;
  NodeId home = kLocalNode;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) {
      return Error(ErrorCode::kNotFound, "no such topic: " + topic);
    }
    stream = it->second.stream.get();
    home = it->second.info.home_node;
  }
  ChargeLatency(home, to_node);
  auto latest = stream->Latest();
  if (!latest.has_value()) {
    return Error(ErrorCode::kUnavailable, "topic empty: " + topic);
  }
  return latest->value;
}

NodeId Broker::HomeNode(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  return it == topics_.end() ? kLocalNode : it->second.info.home_node;
}

void Broker::ChargeLatency(NodeId a, NodeId b) {
  if (network_ == nullptr) return;
  const TimeNs latency = network_->Latency(a, b);
  if (latency > 0) clock_.Charge(latency);
}

}  // namespace apollo
