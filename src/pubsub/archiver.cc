#include "pubsub/archiver.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace apollo {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSegmentSuffix = ".wal";
constexpr const char* kQuarantineSuffix = ".corrupt";

Status IoError(const std::string& what, const std::string& path) {
  return Status(ErrorCode::kIoError, what + ": " + path);
}

// Reads a whole segment file into `buf`. Segments are bounded by
// WalConfig::segment_bytes, so a full read is cheap and gives the scanner
// one contiguous image to validate.
Status ReadFile(const std::string& path, std::vector<std::uint8_t>& buf) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return IoError("archive segment open failed", path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return IoError("archive segment size failed", path);
  }
  std::fseek(f, 0, SEEK_SET);
  buf.resize(static_cast<std::size_t>(size));
  const std::size_t read = size == 0
                               ? 0
                               : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) {
    return IoError("archive segment read failed", path);
  }
  return Status::Ok();
}

}  // namespace

ArchiveLog::ArchiveLog(std::string base_path, std::uint32_t payload_size,
                       WalConfig config)
    : base_path_(std::move(base_path)),
      payload_size_(payload_size),
      config_(config) {
  if (config_.segment_bytes <
      wal::kHeaderSize + wal::kFrameOverhead + payload_size_) {
    // A segment must hold at least one record.
    config_.segment_bytes =
        wal::kHeaderSize + wal::kFrameOverhead + payload_size_;
  }
  frame_.resize(wal::kFrameOverhead + payload_size_);
}

ArchiveLog::~ArchiveLog() {
  if (active_ != nullptr) {
    std::fflush(active_);
    std::fclose(active_);
  }
}

std::string ArchiveLog::SegmentPathFor(std::uint64_t seq) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base_path_ + buf + kSegmentSuffix;
}

Status ArchiveLog::ScanSegmentFile(
    const std::string& path, std::vector<std::uint8_t>& buf,
    wal::ScanResult& result,
    const std::function<void(const void*)>& fn) const {
  Status status = ReadFile(path, buf);
  if (!status.ok()) return status;
  if (fn == nullptr) {
    result = wal::ScanBuffer(buf.data(), buf.size());
  } else {
    result = wal::ScanBuffer(
        buf.data(), buf.size(),
        [&fn](const std::uint8_t* payload, std::uint32_t) { fn(payload); });
  }
  return Status::Ok();
}

Status ArchiveLog::Open() {
  TRACE_SPAN("archiver.recover", base_path_);
  // Discover existing segments of this base path.
  const fs::path base(base_path_);
  const std::string prefix = base.filename().string() + ".";
  std::error_code ec;
  const fs::path dir =
      base.has_parent_path() ? base.parent_path() : fs::path(".");
  std::vector<std::pair<std::uint64_t, std::string>> found;
  if (fs::exists(dir, ec)) {
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.size() <= prefix.size() + 4) continue;
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      if (name.compare(name.size() - 4, 4, kSegmentSuffix) != 0) continue;
      const std::string seq_str =
          name.substr(prefix.size(), name.size() - prefix.size() - 4);
      if (seq_str.empty() ||
          seq_str.find_first_not_of("0123456789") != std::string::npos) {
        continue;
      }
      found.emplace_back(std::strtoull(seq_str.c_str(), nullptr, 10),
                         entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());

  // Recover each segment: keep the valid prefix, truncate torn/corrupt
  // tails in place, quarantine segments whose header does not parse.
  TelemetryCounters& telemetry = GlobalTelemetry();
  std::vector<std::uint8_t> buf;
  for (const auto& [seq, path] : found) {
    ++recovery_.segments_scanned;
    wal::ScanResult scan;
    Status status = ScanSegmentFile(path, buf, scan, nullptr);
    if (!status.ok()) return status;
    if (!scan.header_ok) {
      // Unreadable as a WAL segment at all: move it aside so it never
      // poisons reads, but keep the bytes for forensics.
      std::error_code rename_ec;
      fs::rename(path, path + kQuarantineSuffix, rename_ec);
      if (rename_ec) return IoError("archive quarantine failed", path);
      ++recovery_.corrupt_segments;
      ++recovery_.quarantined_segments;
      recovery_.bytes_truncated += scan.dropped_bytes;
      telemetry.archive_corrupt_segments.fetch_add(
          1, std::memory_order_relaxed);
      telemetry.archive_quarantined_segments.fetch_add(
          1, std::memory_order_relaxed);
      telemetry.archive_truncated_bytes.fetch_add(
          scan.dropped_bytes, std::memory_order_relaxed);
      continue;
    }
    if (scan.dropped_bytes > 0) {
      std::error_code resize_ec;
      fs::resize_file(path, scan.valid_bytes, resize_ec);
      if (resize_ec) return IoError("archive truncate failed", path);
      ++recovery_.corrupt_segments;
      recovery_.bytes_truncated += scan.dropped_bytes;
      telemetry.archive_corrupt_segments.fetch_add(
          1, std::memory_order_relaxed);
      telemetry.archive_truncated_bytes.fetch_add(
          scan.dropped_bytes, std::memory_order_relaxed);
    }
    recovery_.records_recovered += scan.records;
    telemetry.archive_recovered_records.fetch_add(
        scan.records, std::memory_order_relaxed);
    segments_.push_back(
        Segment{seq, path, scan.records, scan.valid_bytes});
    record_count_ += scan.records;
  }

  if (segments_.empty()) {
    segments_.push_back(Segment{1, SegmentPathFor(1), 0, 0});
    return OpenActive(/*fresh=*/true);
  }
  return OpenActive(/*fresh=*/false);
}

Status ArchiveLog::OpenActive(bool fresh) {
  Segment& seg = segments_.back();
  // "ab" keeps every existing byte and positions at the (possibly just
  // truncated) end — the append-safe open the old "wb+" mode lacked.
  active_ = std::fopen(seg.path.c_str(), fresh ? "wb" : "ab");
  if (active_ == nullptr) {
    return IoError("archive segment open failed", seg.path);
  }
  if (fresh) {
    std::uint8_t header[wal::kHeaderSize];
    wal::EncodeHeader(header, payload_size_);
    if (std::fwrite(header, sizeof(header), 1, active_) != 1 ||
        std::fflush(active_) != 0) {
      GlobalTelemetry().archive_write_errors.fetch_add(
          1, std::memory_order_relaxed);
      std::fclose(active_);
      active_ = nullptr;
      return IoError("archive header write failed", seg.path);
    }
    seg.bytes = wal::kHeaderSize;
  }
  return Status::Ok();
}

Status ArchiveLog::RotateLocked() {
  TRACE_SPAN("archiver.rotate", base_path_);
  Status status = SyncLocked();  // rotation is a durability barrier
  if (!status.ok()) return status;
  std::fclose(active_);
  active_ = nullptr;
  const std::uint64_t next_seq = segments_.back().seq + 1;
  segments_.push_back(Segment{next_seq, SegmentPathFor(next_seq), 0, 0});
  status = OpenActive(/*fresh=*/true);
  if (!status.ok()) {
    // Re-open the previous segment so appends can continue there.
    segments_.pop_back();
    Status reopen = OpenActive(/*fresh=*/false);
    return reopen.ok() ? status : reopen;
  }
  ++rotations_;
  GlobalTelemetry().archive_rotations.fetch_add(1,
                                                std::memory_order_relaxed);
  return ApplyRetentionLocked();
}

Status ArchiveLog::ApplyRetentionLocked() {
  if (config_.max_segments == 0) return Status::Ok();
  while (segments_.size() > config_.max_segments) {
    const Segment oldest = segments_.front();
    // With a cold tier attached, only manifest-committed segments may
    // expire: deleting an uncompacted sealed segment would destroy the
    // sole copy of its rows. Retention simply waits for the compactor
    // to catch up (segment count may temporarily exceed max_segments).
    if (retention_gate_ && !retention_gate_(oldest.seq)) break;
    std::error_code ec;
    fs::remove(oldest.path, ec);
    if (ec) return IoError("archive retention remove failed", oldest.path);
    record_count_ -= oldest.records;
    segments_.erase(segments_.begin());
  }
  return Status::Ok();
}

Status ArchiveLog::SyncLocked() {
  TRACE_SPAN("archiver.fsync");
  if (fault_ != nullptr) {
    const std::string_view label = label_.empty() ? base_path_ : label_;
    if (auto action = fault_->Evaluate(FaultSite::kArchiveFsync, label);
        action.has_value() && action->fails()) {
      GlobalTelemetry().archive_fsync_failures.fetch_add(
          1, std::memory_order_relaxed);
      return Status(ErrorCode::kIoError,
                    "injected archive fsync failure: " + base_path_);
    }
  }
  static obs::Histogram fsync_hist = obs::MetricsRegistry::Global().GetHistogram(
      "apollo_archive_fsync_duration_ns", "Archive segment fsync latency");
  const TimeNs fsync_start = RealClock::Instance().Now();
  if (std::fflush(active_) != 0 || ::fsync(::fileno(active_)) != 0) {
    GlobalTelemetry().archive_fsync_failures.fetch_add(
        1, std::memory_order_relaxed);
    GlobalTelemetry().archive_write_errors.fetch_add(
        1, std::memory_order_relaxed);
    return IoError("archive fsync failed", segments_.back().path);
  }
  fsync_hist.Record(RealClock::Instance().Now() - fsync_start);
  ++fsyncs_;
  GlobalTelemetry().archive_fsyncs.fetch_add(1, std::memory_order_relaxed);
  appends_since_sync_ = 0;
  last_sync_ = RealClock::Instance().Now();
  return Status::Ok();
}

void ArchiveLog::RollbackActive(std::uint64_t offset) {
  // Cut the segment back to its pre-record length so the failed append
  // leaves no torn frame behind and a retry cannot duplicate bytes.
  std::clearerr(active_);
  std::fflush(active_);
  if (::ftruncate(::fileno(active_), static_cast<off_t>(offset)) == 0) {
    std::fseek(active_, static_cast<long>(offset), SEEK_SET);
  }
}

Status ArchiveLog::Append(const void* payload) {
  if (active_ == nullptr) {
    return IoError("archive not open", base_path_);
  }
  Segment* seg = &segments_.back();
  if (seg->records > 0 &&
      seg->bytes + frame_.size() > config_.segment_bytes) {
    Status status = RotateLocked();
    if (!status.ok()) return status;
    seg = &segments_.back();
  }
  const std::uint64_t offset = seg->bytes;
  wal::EncodeRecord(frame_.data(), payload, payload_size_);
  if (std::fwrite(frame_.data(), frame_.size(), 1, active_) != 1 ||
      std::fflush(active_) != 0) {
    // fflush per record pushes the frame into the OS so only a real
    // machine failure (not process death) can lose an acknowledged
    // append; the fsync policy below controls power-loss durability.
    GlobalTelemetry().archive_write_errors.fetch_add(
        1, std::memory_order_relaxed);
    RollbackActive(offset);
    return IoError("archive write failed", seg->path);
  }
  seg->bytes += frame_.size();
  ++seg->records;
  ++record_count_;
  ++appends_since_sync_;

  bool sync_due = false;
  switch (config_.fsync_policy) {
    case FsyncPolicy::kNever:
      break;
    case FsyncPolicy::kEveryN:
      sync_due = appends_since_sync_ >= config_.fsync_every_n;
      break;
    case FsyncPolicy::kInterval:
      sync_due =
          RealClock::Instance().Now() - last_sync_ >= config_.fsync_interval;
      break;
  }
  if (sync_due) {
    Status status = SyncLocked();
    if (!status.ok()) {
      // The record is not durably acknowledged: roll it back so the
      // caller's retry appends it exactly once.
      RollbackActive(offset);
      seg->bytes -= frame_.size();
      --seg->records;
      --record_count_;
      --appends_since_sync_;
      return status;
    }
  }
  return Status::Ok();
}

Status ArchiveLog::Sync() {
  if (active_ == nullptr) return IoError("archive not open", base_path_);
  return SyncLocked();
}

Status ArchiveLog::ForEach(
    const std::function<void(const void* payload)>& fn) {
  return ForEachTail(UINT64_MAX, fn);
}

Status ArchiveLog::ForEachTail(
    std::uint64_t n, const std::function<void(const void* payload)>& fn) {
  if (active_ != nullptr && std::fflush(active_) != 0) {
    GlobalTelemetry().archive_write_errors.fetch_add(
        1, std::memory_order_relaxed);
    return IoError("archive flush failed", segments_.back().path);
  }
  // Skip whole segments that lie entirely before the requested tail.
  std::size_t first = 0;
  if (n != UINT64_MAX) {
    std::uint64_t kept = 0;
    first = segments_.size();
    while (first > 0 && kept < n) {
      --first;
      kept += segments_[first].records;
    }
  }
  std::vector<std::uint8_t> buf;
  for (std::size_t i = first; i < segments_.size(); ++i) {
    wal::ScanResult scan;
    Status status = ScanSegmentFile(segments_[i].path, buf, scan, fn);
    if (!status.ok()) return status;
    if (scan.records != segments_[i].records) {
      // The file changed underneath us (external tampering or bit rot
      // since open). Surface it — the caller sees a short read otherwise.
      return Status(ErrorCode::kIoError,
                    "archive segment lost records on re-read: " +
                        segments_[i].path);
    }
  }
  return Status::Ok();
}

std::vector<std::string> ArchiveLog::SegmentPaths() const {
  std::vector<std::string> paths;
  paths.reserve(segments_.size());
  for (const Segment& seg : segments_) paths.push_back(seg.path);
  return paths;
}

std::string ArchiveLog::ActiveSegmentPath() const {
  return segments_.empty() ? std::string() : segments_.back().path;
}

std::vector<ArchiveLog::SealedSegment> ArchiveLog::SealedSegments() const {
  std::vector<SealedSegment> sealed;
  if (segments_.size() <= 1) return sealed;
  sealed.reserve(segments_.size() - 1);
  for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
    sealed.push_back(SealedSegment{segments_[i].seq, segments_[i].path,
                                   segments_[i].records});
  }
  return sealed;
}

std::uint64_t ArchiveLog::DropSegmentsThrough(std::uint64_t through_seq) {
  std::uint64_t dropped = 0;
  while (segments_.size() > 1 && segments_.front().seq <= through_seq) {
    const Segment oldest = segments_.front();
    std::error_code ec;
    fs::remove(oldest.path, ec);
    // A missing file is fine — a previous crash may have removed it
    // after the manifest committed; the bookkeeping still advances.
    record_count_ -= oldest.records;
    segments_.erase(segments_.begin());
    ++dropped;
  }
  return dropped;
}

}  // namespace apollo
