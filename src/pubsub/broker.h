// Broker: named-stream registry plus a simple network cost model.
//
// SCoRe vertices on different (simulated) nodes communicate through broker
// streams. A publish or fetch that crosses nodes pays the configured per-hop
// latency, which is what makes the degree/Hamming-distance effects of
// Figure 7 observable in a single process.
//
// Hot-path layout: the topic registry is sharded across kStripes
// independently locked maps (hash of topic name -> stripe), so concurrent
// publishers to different topics never contend on a registry lock. Steady-
// state callers skip the registry entirely by resolving a TopicHandle once
// (at deploy/plan time) and publishing/fetching through it; a registry
// version counter lets handles self-heal after topic churn.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "pubsub/stream.h"

namespace apollo {

using NodeId = std::int32_t;
constexpr NodeId kLocalNode = -1;

// Models the cluster interconnect. Latency(a, b) returns the one-way message
// latency between nodes a and b in nanoseconds.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  virtual TimeNs Latency(NodeId from, NodeId to) const = 0;
};

// Uniform latency for any remote hop; zero for local delivery.
class UniformNetwork final : public NetworkModel {
 public:
  explicit UniformNetwork(TimeNs hop_latency) : hop_latency_(hop_latency) {}
  TimeNs Latency(NodeId from, NodeId to) const override {
    return (from == to || from == kLocalNode || to == kLocalNode)
               ? 0
               : hop_latency_;
  }

 private:
  TimeNs hop_latency_;
};

struct TopicInfo {
  std::string name;
  NodeId home_node = kLocalNode;  // node hosting the stream
};

// Publish-path hook: notified after entries land in a stream, from the
// publisher's thread. Implementations must be cheap and thread-safe (the
// continuous-query engine just flips a per-topic dirty flag); anything
// heavier belongs on the observer's own thread.
class PublishObserver {
 public:
  virtual ~PublishObserver() = default;
  virtual void OnPublish(const std::string& topic, std::size_t n) = 0;
};

// Stable reference to a topic: the stream pointer plus its cached home node,
// resolved once instead of per-publish. A handle records the registry
// version it was resolved under; broker accessors revalidate (one relaxed
// atomic load) and transparently re-resolve by name after topic churn.
// Holding a handle does not keep a removed topic alive — like raw
// TelemetryStream pointers, teardown is coordinated by the caller.
class TopicHandle {
 public:
  TopicHandle() = default;

  bool valid() const { return stream_ != nullptr; }
  TelemetryStream* stream() const { return stream_; }
  NodeId home_node() const { return home_; }
  const std::string& name() const { return name_; }

 private:
  friend class Broker;
  TopicHandle(std::string name, TelemetryStream* stream, NodeId home,
              std::uint64_t version)
      : name_(std::move(name)),
        stream_(stream),
        home_(home),
        version_(version) {}

  std::string name_;
  TelemetryStream* stream_ = nullptr;
  NodeId home_ = kLocalNode;
  std::uint64_t version_ = 0;
};

class Broker {
 public:
  // Registry stripe count. Power of two; 16 keeps the per-stripe footprint
  // one cache line while exceeding the core counts the Figure 6 fan-in
  // sweep exercises.
  static constexpr std::size_t kStripes = 16;

  // `clock` is used to charge simulated network latency (SleepFor). A null
  // network model makes every hop free.
  explicit Broker(Clock& clock,
                  std::shared_ptr<const NetworkModel> network = nullptr)
      : clock_(clock),
        network_(std::move(network)),
        publishes_(GlobalTelemetry().publishes) {}

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Creates a telemetry stream hosted on `home_node`. Fails if the topic
  // already exists.
  Expected<TelemetryStream*> CreateTopic(const std::string& name,
                                         NodeId home_node = kLocalNode,
                                         std::size_t capacity = 4096,
                                         Archiver<Sample>* archiver = nullptr);

  // Looks up an existing topic's stream.
  Expected<TelemetryStream*> GetTopic(const std::string& name) const;

  // Recovery path: seeds an existing topic's (still-empty) stream with
  // entries replayed from its archive, oldest first. Delegates to
  // Stream::RestoreWindow — fails if the stream has already been appended
  // to or the batch exceeds its capacity.
  Status RestoreTopic(const std::string& name,
                      const std::vector<TelemetryStream::Entry>& entries);

  // Cluster resync path: seeds an existing topic's (still-empty) stream
  // with a window copied from a peer replica, preserving the peer's entry
  // ids (Stream::RestoreWindowAt). Ids must be contiguous.
  Status RestoreTopicFromPeer(
      const std::string& name,
      const std::vector<TelemetryStream::Entry>& entries);

  // Creates the topic if absent, otherwise returns the existing stream —
  // the replication/resync paths materialize topics on replicas on first
  // contact instead of coordinating creation cluster-wide.
  Expected<TelemetryStream*> EnsureTopic(
      const std::string& name, NodeId home_node = kLocalNode,
      std::size_t capacity = 4096, Archiver<Sample>* archiver = nullptr);

  // Resolves a stable handle for steady-state access (deploy/plan time).
  Expected<TopicHandle> Resolve(const std::string& name) const;

  // Removes a topic. The stream is destroyed; outstanding pointers and
  // handles dangle, so callers coordinate teardown (vertices unregister
  // before removal).
  Status RemoveTopic(const std::string& name);

  bool HasTopic(const std::string& name) const;
  std::vector<TopicInfo> ListTopics() const;

  // --- string-keyed access (registry lookup per call) ---

  // Publishes to a topic from `from_node`, charging network latency when the
  // topic lives on a different node. Returns the assigned entry id.
  Expected<std::uint64_t> Publish(const std::string& topic, NodeId from_node,
                                  TimeNs timestamp, const Sample& sample);

  // Fetches entries past `cursor` from `to_node`'s perspective, charging
  // network latency for remote topics. Advances cursor.
  Expected<std::vector<TelemetryStream::Entry>> Fetch(
      const std::string& topic, NodeId to_node, std::uint64_t& cursor,
      std::size_t max_entries = SIZE_MAX);

  // Latest entry of a topic as seen from `to_node` (charges latency).
  Expected<Sample> LatestValue(const std::string& topic, NodeId to_node);

  // --- handle access (no registry lookup on the steady-state path) ---

  Expected<std::uint64_t> Publish(TopicHandle& handle, NodeId from_node,
                                  TimeNs timestamp, const Sample& sample);

  // Result of a batched publish to one topic run.
  struct BatchPublishResult {
    std::uint64_t last_entry_id = 0;  // valid when accepted > 0
    std::size_t accepted = 0;
    // First per-entry failure (injected drops), when accepted < n.
    ErrorCode first_error_code = ErrorCode::kUnavailable;
    std::string first_error;
  };

  // Batched publish of `n` entries (id fields ignored) to one topic — the
  // wire/shm ingest handoff. One handle refresh, one network-latency charge
  // (the run arrived as one wire message), and one stream-lock acquisition
  // via Stream::AppendBatch instead of n. With a fault injector attached,
  // FaultSite::kPublish is still evaluated per entry so chaos accounting
  // stays exact: a failing entry sets bit (bitmap_base + i) in `error_bits`
  // (when non-null; the caller sizes it) and is skipped while the rest of
  // the run proceeds. An error return (unknown topic) means the whole run
  // failed and no bits were set.
  Expected<BatchPublishResult> PublishBatch(
      TopicHandle& handle, NodeId from_node,
      const TelemetryStream::Entry* entries, std::size_t n,
      std::vector<std::uint8_t>* error_bits = nullptr,
      std::size_t bitmap_base = 0);

  // Replication apply: appends `n` entries exactly as decided by the
  // topic's primary — no fault evaluation, no latency charge, no retry.
  // A secondary must mirror its primary byte-for-byte; re-rolling fault
  // dice here would silently fork the replicas' id sequences. Returns the
  // last assigned entry id.
  Expected<std::uint64_t> AppendReplicated(TopicHandle& handle,
                                           const TelemetryStream::Entry* entries,
                                           std::size_t n);

  Expected<std::vector<TelemetryStream::Entry>> Fetch(
      TopicHandle& handle, NodeId to_node, std::uint64_t& cursor,
      std::size_t max_entries = SIZE_MAX);

  // Allocation-free fetch into a caller-owned scratch buffer (cleared
  // first). Returns the number of entries read.
  Expected<std::size_t> FetchInto(TopicHandle& handle, NodeId to_node,
                                  std::uint64_t& cursor,
                                  std::vector<TelemetryStream::Entry>& out,
                                  std::size_t max_entries = SIZE_MAX);

  Expected<Sample> LatestValue(TopicHandle& handle, NodeId to_node);

  // --- fault tolerance ---

  // Attaches a fault injector: publishes evaluate FaultSite::kPublish and
  // fetches FaultSite::kFetch (topic-filtered). Null detaches. The injector
  // is not owned and must outlive its attachment.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return fault_.load(std::memory_order_acquire);
  }

  // Attaches a publish observer, notified after every successful append
  // (all three append paths: Publish, PublishBatch, AppendReplicated).
  // Null detaches. Not owned; must outlive its attachment.
  void AttachPublishObserver(PublishObserver* observer) {
    publish_observer_.store(observer, std::memory_order_release);
  }

  // Publish/fetch with retry-and-exponential-backoff: transient failures
  // (injected drops/timeouts, kUnavailable) retry up to the policy's
  // attempt budget, charging backoff to the clock so simulated runs account
  // for it; a policy deadline bounds the total time spent. The final
  // failure is surfaced (and counted in GlobalTelemetry()) instead of
  // silently losing the tuple.
  Expected<std::uint64_t> PublishWithRetry(TopicHandle& handle,
                                           NodeId from_node, TimeNs timestamp,
                                           const Sample& sample,
                                           const RetryPolicy& policy = {});

  Expected<std::size_t> FetchIntoWithRetry(
      TopicHandle& handle, NodeId to_node, std::uint64_t& cursor,
      std::vector<TelemetryStream::Entry>& out,
      std::size_t max_entries = SIZE_MAX, const RetryPolicy& policy = {});

  // Charges one topic->node network hop without touching the stream — the
  // query path uses this instead of a zero-length Fetch probe.
  Status ChargeHop(TopicHandle& handle, NodeId node);
  Status ChargeHop(const std::string& topic, NodeId node);

  NodeId HomeNode(const std::string& topic) const;

  // Registry version: bumped on topic create/remove. Handle caches (query
  // plans, vertices) compare against this to detect churn.
  std::uint64_t RegistryVersion() const {
    return version_.load(std::memory_order_acquire);
  }

  Clock& clock() { return clock_; }

 private:
  struct Topic {
    TopicInfo info;
    std::unique_ptr<TelemetryStream> stream;
  };

  // Padded so neighboring stripes never share a cache line under fan-in.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::string, Topic> topics;
  };

  Stripe& StripeFor(const std::string& name) const {
    return stripes_[std::hash<std::string>{}(name) & (kStripes - 1)];
  }

  // Revalidates `handle` against the current registry version, re-resolving
  // by name when stale. Hot path: one atomic load and a compare.
  Status Refresh(TopicHandle& handle);

  void ChargeLatency(NodeId a, NodeId b);

  // Consults the attached injector (if any) at `site` for `topic`. Delay
  // actions are charged to the clock here; a hard failure returns an error
  // Status. One relaxed load when no injector is attached.
  Status EvaluateFault(FaultSite site, const std::string& topic);

  Clock& clock_;
  std::shared_ptr<const NetworkModel> network_;
  // Publish-path counter handle, resolved once at construction. Bumping a
  // copied handle skips GlobalTelemetry()'s function-local-static guard on
  // every publish (it shares the same registry cell, so the facade and
  // Prometheus exposition see every increment).
  obs::Counter publishes_;
  // Notifies the attached publish observer (if any) that `n` entries
  // landed in `topic`. One relaxed load when nothing is attached.
  void NotifyPublish(const std::string& topic, std::size_t n);

  std::atomic<std::uint64_t> version_{1};
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<PublishObserver*> publish_observer_{nullptr};
  mutable std::array<Stripe, kStripes> stripes_;
};

}  // namespace apollo
