// Broker: named-stream registry plus a simple network cost model.
//
// SCoRe vertices on different (simulated) nodes communicate through broker
// streams. A publish or fetch that crosses nodes pays the configured per-hop
// latency, which is what makes the degree/Hamming-distance effects of
// Figure 7 observable in a single process.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "pubsub/stream.h"

namespace apollo {

using NodeId = std::int32_t;
constexpr NodeId kLocalNode = -1;

// Models the cluster interconnect. Latency(a, b) returns the one-way message
// latency between nodes a and b in nanoseconds.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;
  virtual TimeNs Latency(NodeId from, NodeId to) const = 0;
};

// Uniform latency for any remote hop; zero for local delivery.
class UniformNetwork final : public NetworkModel {
 public:
  explicit UniformNetwork(TimeNs hop_latency) : hop_latency_(hop_latency) {}
  TimeNs Latency(NodeId from, NodeId to) const override {
    return (from == to || from == kLocalNode || to == kLocalNode)
               ? 0
               : hop_latency_;
  }

 private:
  TimeNs hop_latency_;
};

struct TopicInfo {
  std::string name;
  NodeId home_node = kLocalNode;  // node hosting the stream
};

class Broker {
 public:
  // `clock` is used to charge simulated network latency (SleepFor). A null
  // network model makes every hop free.
  explicit Broker(Clock& clock,
                  std::shared_ptr<const NetworkModel> network = nullptr)
      : clock_(clock), network_(std::move(network)) {}

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // Creates a telemetry stream hosted on `home_node`. Fails if the topic
  // already exists.
  Expected<TelemetryStream*> CreateTopic(const std::string& name,
                                         NodeId home_node = kLocalNode,
                                         std::size_t capacity = 4096,
                                         Archiver<Sample>* archiver = nullptr);

  // Looks up an existing topic's stream.
  Expected<TelemetryStream*> GetTopic(const std::string& name) const;

  // Removes a topic. The stream is destroyed; outstanding pointers dangle,
  // so callers coordinate teardown (vertices unregister before removal).
  Status RemoveTopic(const std::string& name);

  bool HasTopic(const std::string& name) const;
  std::vector<TopicInfo> ListTopics() const;

  // Publishes to a topic from `from_node`, charging network latency when the
  // topic lives on a different node. Returns the assigned entry id.
  Expected<std::uint64_t> Publish(const std::string& topic, NodeId from_node,
                                  TimeNs timestamp, const Sample& sample);

  // Fetches entries past `cursor` from `to_node`'s perspective, charging
  // network latency for remote topics. Advances cursor.
  Expected<std::vector<TelemetryStream::Entry>> Fetch(
      const std::string& topic, NodeId to_node, std::uint64_t& cursor,
      std::size_t max_entries = SIZE_MAX);

  // Latest entry of a topic as seen from `to_node` (charges latency).
  Expected<Sample> LatestValue(const std::string& topic, NodeId to_node);

  NodeId HomeNode(const std::string& topic) const;

  Clock& clock() { return clock_; }

 private:
  struct Topic {
    TopicInfo info;
    std::unique_ptr<TelemetryStream> stream;
  };

  void ChargeLatency(NodeId a, NodeId b);

  Clock& clock_;
  std::shared_ptr<const NetworkModel> network_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Topic> topics_;
};

}  // namespace apollo
