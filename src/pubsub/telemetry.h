// Telemetry record types flowing through Apollo's pub-sub fabric, plus the
// fabric's own health counters.
//
// The paper stores Information as a tuple (timestamp, fact/insight value,
// predicted|measured). Sample is that tuple; it is trivially copyable so the
// Archiver can persist it as a fixed binary record.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace apollo {

enum class Provenance : std::uint8_t { kMeasured = 0, kPredicted = 1 };

struct Sample {
  TimeNs timestamp = 0;
  double value = 0.0;
  Provenance provenance = Provenance::kMeasured;

  bool measured() const { return provenance == Provenance::kMeasured; }

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.timestamp == b.timestamp && a.value == b.value &&
           a.provenance == b.provenance;
  }
};

static_assert(std::is_trivially_copyable_v<Sample>);

// Fabric self-telemetry: how the monitoring plane itself is doing. A thin
// façade over the process-wide obs::MetricsRegistry — every field is a
// handle to a named counter in the registry, so the same numbers appear in
// the Prometheus exposition (ApolloService::DumpMetrics) that the code and
// tests read here. Bumps are relaxed atomics, safe from producers, the
// event loop, and query threads concurrently.
//
// A failed persist or a dropped publish used to vanish silently; these
// counters make every loss surface observable (and testable under chaos).
//
// Each field registers itself through Reg() in the constructor, which also
// records it in fields_ — Reset() and the snapshot-completeness test walk
// that list, so a new counter cannot be added without being reset (and a
// handle member cannot exist without being registered: it has no default
// constructor path here).
struct TelemetryCounters {
  TelemetryCounters();

  // Broker publish path.
  obs::Counter publishes;
  obs::Counter publish_drops;     // injected drops
  obs::Counter publish_retries;   // backoff retries
  obs::Counter publish_failures;  // retries exhausted

  // Broker fetch path.
  obs::Counter fetch_timeouts;  // injected timeouts
  obs::Counter fetch_retries;
  obs::Counter fetch_failures;

  // Archiver path.
  obs::Counter archive_writes;
  obs::Counter archive_retries;
  obs::Counter archive_write_failures;  // retries exhausted
  // Every failed fwrite/fflush/fsync attempt (before any retry), so a
  // struggling disk is visible even while retries are still absorbing it.
  obs::Counter archive_write_errors;
  obs::Counter archive_fsyncs;
  obs::Counter archive_fsync_failures;
  obs::Counter archive_rotations;
  obs::Counter archive_read_errors;  // query-path scans

  // WAL recovery (startup scans of existing segments).
  obs::Counter archive_recovered_records;
  obs::Counter archive_truncated_bytes;
  obs::Counter archive_corrupt_segments;
  obs::Counter archive_quarantined_segments;

  // Supervision (SCoRe vertex lifecycle).
  obs::Counter vertex_crashes;
  obs::Counter vertex_stalls;
  obs::Counter vertex_restarts;
  obs::Counter vertex_give_ups;
  obs::Counter degraded_marked;
  obs::Counter degraded_cleared;

  // Stream eviction -> archive handoff.
  obs::Counter stream_evictions;

  // Network fabric (src/net): wire traffic and loss surfaces. Byte counters
  // cover framed payload + header bytes actually written/read on sockets.
  obs::Counter net_bytes_sent;
  obs::Counter net_bytes_received;
  obs::Counter net_messages_sent;
  obs::Counter net_messages_received;
  obs::Counter net_connections_opened;
  obs::Counter net_connections_closed;
  obs::Counter net_conn_drops;        // injected kConnDrop closes
  obs::Counter net_send_failures;     // injected kNetSend + socket errors
  obs::Counter net_recv_drops;        // injected kNetRecv frame drops
  obs::Counter net_protocol_errors;   // bad magic/version/CRC on a conn
  obs::Counter net_backpressure_skips;  // deliveries skipped: outbuf full
  obs::Counter net_idle_closes;       // connections reaped by idle timeout
  obs::Counter net_node_timeouts;     // scatter-gather nodes past deadline
  obs::Counter net_degraded_fallbacks;  // node answers served from cache

  // Batched ingest fast path (wire batch publishes + shm lane).
  obs::Counter net_batch_publishes;   // kPublishBatch frames handled
  obs::Counter net_batch_samples;     // samples carried in those frames
  obs::Counter net_batch_decode_errors;  // malformed/injected batch rejects
  obs::Counter net_batch_sample_errors;  // per-sample failures (ack bitmap)
  obs::Counter net_shm_attaches;      // shm lanes accepted by a daemon
  obs::Counter net_shm_attach_failures;  // refused/failed handshakes
  obs::Counter net_shm_samples;       // samples drained from shm rings
  obs::Counter net_shm_fallbacks;     // samples rerouted to TCP (ring full
                                      // or lane unavailable)
  obs::Counter net_shm_orphans_reaped;  // orphaned lane segments unlinked
                                        // after their producer died

  // Cluster layer (placement, membership, replication, resync).
  obs::Counter cluster_heartbeats_sent;
  obs::Counter cluster_heartbeat_failures;  // probe round-trips that failed
  obs::Counter cluster_peer_suspects;       // alive -> suspect transitions
  obs::Counter cluster_peer_deaths;         // -> dead transitions
  obs::Counter cluster_peer_recoveries;     // dead peer seen again
  obs::Counter cluster_map_pushes;          // kClusterMap pushes to clients
  obs::Counter cluster_forwarded_publishes;  // runs proxied to the primary
  obs::Counter cluster_replication_batches;  // kReplicate round-trips sent
  obs::Counter cluster_replication_failures;  // failed/refused replicates
  obs::Counter cluster_quorum_failures;     // publishes NACKed: quorum unmet
  obs::Counter cluster_resync_topics;       // topics caught up from a peer
  obs::Counter cluster_resync_entries;      // entries copied during resync

  // Zeroes every registered counter (walks fields_, so it cannot go stale
  // when a counter is added).
  void Reset();

  // (field name, handle) for every counter this façade registered, in
  // declaration order. The snapshot-completeness test iterates this to
  // prove Reset() covers the whole struct.
  const std::vector<std::pair<std::string, obs::Counter>>& fields() const {
    return fields_;
  }

 private:
  obs::Counter Reg(const char* field, const char* metric, const char* help);

  std::vector<std::pair<std::string, obs::Counter>> fields_;
};

// Process-wide counters. Tests Reset() them at setup; concurrent bumps are
// exact (atomics), reads are racy-by-design snapshots.
TelemetryCounters& GlobalTelemetry();

}  // namespace apollo
