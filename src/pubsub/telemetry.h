// Telemetry record types flowing through Apollo's pub-sub fabric.
//
// The paper stores Information as a tuple (timestamp, fact/insight value,
// predicted|measured). Sample is that tuple; it is trivially copyable so the
// Archiver can persist it as a fixed binary record.
#pragma once

#include <cstdint>
#include <type_traits>

#include "common/clock.h"

namespace apollo {

enum class Provenance : std::uint8_t { kMeasured = 0, kPredicted = 1 };

struct Sample {
  TimeNs timestamp = 0;
  double value = 0.0;
  Provenance provenance = Provenance::kMeasured;

  bool measured() const { return provenance == Provenance::kMeasured; }

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.timestamp == b.timestamp && a.value == b.value &&
           a.provenance == b.provenance;
  }
};

static_assert(std::is_trivially_copyable_v<Sample>);

}  // namespace apollo
