// Stream<T>: in-memory append-only timestamped log with cursor-based
// consumption — the Redis Streams substitute.
//
// Semantics mirrored from Redis Streams:
//  - entries get monotonically increasing ids on append;
//  - any number of independent consumers read from their own cursor (XREAD);
//  - a blocking read waits until an entry past the cursor arrives;
//  - the in-memory window is bounded (XTRIM ~ maxlen) and evicted entries
//    are handed to an optional Archiver.
//
// Hot-path layout: the window is a power-of-two ring buffer indexed by
// entry id (slot = id & mask), so id lookup is O(1) and eviction is a
// pointer bump — no deque node churn. The ring grows geometrically up to
// the capacity so small streams stay small. Each Sample stream also keeps
// a rolling aggregate index (count/sum/min/max/latest, monotonic wedges
// for min/max) so predicate-free aggregate queries answer in O(1).
//
// Appends are mutex-protected: the queue-side throughput in Figure 6 is
// dominated by fan-in contention which this reproduces faithfully. Archiver
// evictions are batched and flushed *outside* the stream lock so file I/O
// never serializes producers.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"
#include "pubsub/archiver.h"
#include "pubsub/telemetry.h"

namespace apollo {

template <typename T>
struct StreamEntry {
  std::uint64_t id = 0;
  TimeNs timestamp = 0;
  T value{};
};

// O(1) snapshot of the rolling aggregates over a Sample stream's in-memory
// window. Sums are exact for integer-valued payloads (rolling add/subtract).
struct StreamAggregates {
  std::size_t count = 0;
  double sum_value = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  double sum_timestamp = 0.0;
  TimeNs min_timestamp = 0;
  TimeNs max_timestamp = 0;
  std::uint64_t predicted = 0;  // entries with Provenance::kPredicted
  // Timestamp stats index the payload timestamp via the window ends, which
  // is only sound while every producer stamps Sample::timestamp equal to
  // the entry timestamp (the SCoRe convention). Cleared — permanently —
  // the first time a mismatched append is seen; readers then recompute
  // timestamp aggregates by scanning.
  bool timestamps_trusted = true;
  StreamEntry<Sample> latest{};
};

template <typename T>
class Stream {
 public:
  using Entry = StreamEntry<T>;

  static constexpr bool kHasAggregateIndex = std::is_same_v<T, Sample>;

  // `capacity` bounds the in-memory window; `archiver` (optional, not owned)
  // receives evicted entries.
  explicit Stream(std::size_t capacity = 4096,
                  Archiver<T>* archiver = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), archiver_(archiver) {
    ring_.resize(std::min<std::size_t>(RoundUpPow2(capacity_), 64));
    mask_ = ring_.size() - 1;
  }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  ~Stream() { FlushEvictions(); }

  // Appends an entry; returns its id. Thread-safe (multi-producer). Evicted
  // entries are staged under the lock and written to the archiver outside
  // it (batched when producers outpace the archive).
  std::uint64_t Append(TimeNs timestamp, T value) {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    if (id - first_id_ == capacity_) {
      Entry& victim = ring_[first_id_ & mask_];
      // Entries below restore_limit_ were replayed from the archive at
      // startup — re-archiving them would duplicate history.
      if (archiver_ != nullptr && victim.id >= restore_limit_) {
        evict_pending_.push_back(victim);
      }
      if constexpr (kHasAggregateIndex) IndexEvict(victim);
      ++first_id_;
    } else if (id - first_id_ == ring_.size()) {
      Grow();
    }
    Entry& slot = ring_[id & mask_];
    slot.id = id;
    slot.timestamp = timestamp;
    slot.value = std::move(value);
    if constexpr (kHasAggregateIndex) IndexAppend(slot);
    const bool flush = archiver_ != nullptr && !evict_pending_.empty();
    lock.unlock();
    cv_.notify_all();
    if (flush) TryFlushEvictions();
    return id;
  }

  // Appends `n` entries under one lock acquisition — the batched-ingest
  // fast path. Entry `id` fields in `entries` are ignored; ids are assigned
  // contiguously and the id of the last appended entry is returned (first
  // is `returned - n + 1`). Eviction, aggregate-index, and archiver
  // bookkeeping match n repeated Append() calls, but waiters are notified
  // once and the eviction flush is attempted once at the end.
  // Precondition: n > 0.
  std::uint64_t AppendBatch(const Entry* entries, std::size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t id = 0;
    for (std::size_t i = 0; i < n; ++i) {
      id = next_id_++;
      if (id - first_id_ == capacity_) {
        Entry& victim = ring_[first_id_ & mask_];
        if (archiver_ != nullptr && victim.id >= restore_limit_) {
          evict_pending_.push_back(victim);
        }
        if constexpr (kHasAggregateIndex) IndexEvict(victim);
        ++first_id_;
      } else if (id - first_id_ == ring_.size()) {
        Grow();
      }
      Entry& slot = ring_[id & mask_];
      slot.id = id;
      slot.timestamp = entries[i].timestamp;
      slot.value = entries[i].value;
      if constexpr (kHasAggregateIndex) IndexAppend(slot);
    }
    const bool flush = archiver_ != nullptr && !evict_pending_.empty();
    lock.unlock();
    cv_.notify_all();
    if (flush) TryFlushEvictions();
    return id;
  }

  // Reads up to `max_entries` entries with id >= cursor into `out`
  // (cleared first); advances cursor past the last returned entry.
  // Non-blocking, no allocation once `out` has warmed up.
  std::size_t Read(std::uint64_t& cursor, std::vector<Entry>& out,
                   std::size_t max_entries = SIZE_MAX) const {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t id = std::max(cursor, first_id_);
    for (; id < next_id_ && out.size() < max_entries; ++id) {
      out.push_back(ring_[id & mask_]);
    }
    if (!out.empty()) cursor = out.back().id + 1;
    return out.size();
  }

  // Allocating convenience wrapper.
  std::vector<Entry> Read(std::uint64_t& cursor,
                          std::size_t max_entries = SIZE_MAX) const {
    std::vector<Entry> out;
    Read(cursor, out, max_entries);
    return out;
  }

  // Blocks until an entry with id >= cursor exists or the real-time deadline
  // passes. Returns true when data is available. (Used only in real-clock
  // runs; sim-clock vertices poll from timer callbacks instead.)
  bool WaitFor(std::uint64_t cursor,
               std::chrono::nanoseconds timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] {
      return next_id_ > cursor;
    });
  }

  // Most recent entry, if any.
  std::optional<Entry> Latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_id_ == next_id_) return std::nullopt;
    return ring_[(next_id_ - 1) & mask_];
  }

  // All in-memory entries with timestamp in [from_ts, to_ts], copied into
  // `out` (cleared first). Entries are appended in non-decreasing timestamp
  // order, so binary search applies.
  void RangeByTime(TimeNs from_ts, TimeNs to_ts,
                   std::vector<Entry>& out) const {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint64_t id = first_id_ + LowerPosByTime(from_ts);
         id < next_id_; ++id) {
      const Entry& entry = ring_[id & mask_];
      if (entry.timestamp > to_ts) break;
      out.push_back(entry);
    }
  }

  // Allocating convenience wrapper.
  std::vector<Entry> RangeByTime(TimeNs from_ts, TimeNs to_ts) const {
    std::vector<Entry> out;
    RangeByTime(from_ts, to_ts, out);
    return out;
  }

  // Visits every in-memory entry with timestamp in [from_ts, to_ts] in id
  // order without copying. `fn` returns false to stop early. Runs under the
  // stream lock: keep `fn` cheap and re-entrancy-free (no calls back into
  // this stream).
  template <typename Fn>
  void ForEachInRange(TimeNs from_ts, TimeNs to_ts, Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint64_t id = first_id_ + LowerPosByTime(from_ts);
         id < next_id_; ++id) {
      const Entry& entry = ring_[id & mask_];
      if (entry.timestamp > to_ts) break;
      if (!fn(entry)) break;
    }
  }

  // Timestamp of the oldest in-memory entry with timestamp >= ts, if any.
  // Lets the query path decide whether an archive read is needed without
  // materializing the window.
  std::optional<TimeNs> FirstTimestampAtOrAfter(TimeNs ts) const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = first_id_ + LowerPosByTime(ts);
    if (id >= next_id_) return std::nullopt;
    return ring_[id & mask_].timestamp;
  }

  // Latest entry at or before `ts` (the "value as of time t" query).
  std::optional<Entry> LatestAtOrBefore(TimeNs ts) const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t pos = UpperPosByTime(ts);
    if (pos == 0) return std::nullopt;
    return ring_[(first_id_ + pos - 1) & mask_];
  }

  // Rolling aggregates over the in-memory window, O(1). Empty window (or a
  // non-Sample stream) yields nullopt.
  std::optional<StreamAggregates> Aggregates() const {
    static_assert(kHasAggregateIndex,
                  "aggregate index is maintained for Sample streams only");
    std::lock_guard<std::mutex> lock(mu_);
    if (first_id_ == next_id_) return std::nullopt;
    StreamAggregates agg;
    agg.count = static_cast<std::size_t>(next_id_ - first_id_);
    agg.sum_value = sum_value_;
    agg.min_value = min_wedge_.front().second;
    agg.max_value = max_wedge_.front().second;
    agg.sum_timestamp = sum_ts_;
    agg.min_timestamp = ring_[first_id_ & mask_].value.timestamp;
    agg.max_timestamp = ring_[(next_id_ - 1) & mask_].value.timestamp;
    agg.predicted = predicted_;
    agg.timestamps_trusted = !ts_mismatch_;
    agg.latest = ring_[(next_id_ - 1) & mask_];
    return agg;
  }

  // Next id that will be assigned; a cursor initialized to this value sees
  // only future entries.
  std::uint64_t NextId() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_id_;
  }

  // Id of the oldest in-memory entry (== NextId() when empty).
  std::uint64_t FirstId() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_id_;
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<std::size_t>(next_id_ - first_id_);
  }

  std::size_t Capacity() const { return capacity_; }
  Archiver<T>* archiver() const { return archiver_; }

  // Degraded-data flag: set by the vertex supervisor when the producer
  // feeding this stream has crashed or stalled, cleared when fresh measured
  // data flows again. Queries answered from a degraded stream carry the
  // flag so consumers know they are reading last-known-good state.
  // Returns the previous value so callers can count transitions exactly.
  bool SetDegraded(bool degraded) {
    return degraded_.exchange(degraded, std::memory_order_acq_rel);
  }
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  // Archive appends that stayed failed after retries (also visible on the
  // archiver itself and in GlobalTelemetry()).
  std::uint64_t ArchiveFailures() const {
    return archive_failures_.load(std::memory_order_acquire);
  }

  // Drains staged evictions into the archiver, blocking until any in-flight
  // flush completes so archive order stays id-sorted. Readers that are
  // about to scan the archive call this to make recent evictions visible.
  // Returns the first persist error of the drained batch (the entries are
  // dropped but counted — see ArchiveFailures()).
  Status FlushEvictions() {
    if (archiver_ == nullptr) return Status::Ok();
    std::lock_guard<std::mutex> archive_lock(archive_mu_);
    return FlushLocked();
  }

  // Recovery path: seeds an empty stream with entries replayed from the
  // archive tail, oldest first. Ids are reassigned contiguously from 0
  // (archived ids can have gaps where appends were dropped) and the
  // restored prefix is excluded from future archiver evictions — those
  // records are already on disk. Fails with kFailedPrecondition on a
  // stream that has ever been appended to, and kInvalidArgument when
  // `entries` exceeds the capacity.
  Status RestoreWindow(const std::vector<Entry>& entries) {
    std::unique_lock<std::mutex> lock(mu_);
    if (next_id_ != 0) {
      return Status(ErrorCode::kFailedPrecondition,
                    "RestoreWindow requires an empty stream");
    }
    if (entries.size() > capacity_) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore batch exceeds stream capacity");
    }
    while (ring_.size() < entries.size()) Grow();
    for (const Entry& entry : entries) {
      const std::uint64_t id = next_id_++;
      Entry& slot = ring_[id & mask_];
      slot = entry;
      slot.id = id;
      if constexpr (kHasAggregateIndex) IndexAppend(slot);
    }
    restore_limit_ = next_id_;
    lock.unlock();
    cv_.notify_all();
    return Status::Ok();
  }

  // Restore-from-peer (cluster resync): seeds an empty stream with a
  // window copied from a replica, PRESERVING the source entry ids — a
  // resynced node must assign the same ids as its peers or replication's
  // expected-base check would flag it divergent forever. `entries` must
  // be id-contiguous; the stream's window starts at entries.front().id.
  // Unlike RestoreWindow, nothing here is re-archived on eviction either
  // (the peer already holds the durable copy; local archiving resumes
  // with post-resync appends).
  Status RestoreWindowAt(const std::vector<Entry>& entries) {
    std::unique_lock<std::mutex> lock(mu_);
    if (next_id_ != 0) {
      return Status(ErrorCode::kFailedPrecondition,
                    "RestoreWindowAt requires an empty stream");
    }
    if (entries.size() > capacity_) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore batch exceeds stream capacity");
    }
    for (std::size_t i = 1; i < entries.size(); ++i) {
      if (entries[i].id != entries[i - 1].id + 1) {
        return Status(ErrorCode::kInvalidArgument,
                      "restore batch ids not contiguous");
      }
    }
    while (ring_.size() < entries.size()) Grow();
    if (!entries.empty()) {
      first_id_ = entries.front().id;
      next_id_ = entries.front().id;
    }
    for (const Entry& entry : entries) {
      const std::uint64_t id = next_id_++;
      Entry& slot = ring_[id & mask_];
      slot = entry;
      slot.id = id;
      if constexpr (kHasAggregateIndex) IndexAppend(slot);
    }
    restore_limit_ = next_id_;
    lock.unlock();
    cv_.notify_all();
    return Status::Ok();
  }

 private:
  static std::size_t RoundUpPow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  // First window position whose timestamp >= ts. Positions are offsets from
  // first_id_; caller holds mu_.
  std::size_t LowerPosByTime(TimeNs ts) const {
    std::size_t lo = 0, hi = static_cast<std::size_t>(next_id_ - first_id_);
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ring_[(first_id_ + mid) & mask_].timestamp < ts) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // First window position whose timestamp > ts. Caller holds mu_.
  std::size_t UpperPosByTime(TimeNs ts) const {
    std::size_t lo = 0, hi = static_cast<std::size_t>(next_id_ - first_id_);
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (ring_[(first_id_ + mid) & mask_].timestamp <= ts) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  // Doubles the ring, remapping live entries to their new slots. Caller
  // holds mu_; only reached while ring_.size() < RoundUpPow2(capacity_).
  void Grow() {
    std::vector<Entry> bigger(ring_.size() * 2);
    const std::size_t new_mask = bigger.size() - 1;
    for (std::uint64_t id = first_id_; id != next_id_; ++id) {
      bigger[id & new_mask] = std::move(ring_[id & mask_]);
    }
    ring_ = std::move(bigger);
    mask_ = new_mask;
  }

  void IndexAppend(const Entry& entry) {
    const double v = entry.value.value;
    sum_value_ += v;
    sum_ts_ += static_cast<double>(entry.value.timestamp);
    if (entry.value.timestamp != entry.timestamp) ts_mismatch_ = true;
    if (entry.value.provenance == Provenance::kPredicted) ++predicted_;
    while (!max_wedge_.empty() && max_wedge_.back().second <= v) {
      max_wedge_.pop_back();
    }
    max_wedge_.emplace_back(entry.id, v);
    while (!min_wedge_.empty() && min_wedge_.back().second >= v) {
      min_wedge_.pop_back();
    }
    min_wedge_.emplace_back(entry.id, v);
  }

  void IndexEvict(const Entry& entry) {
    sum_value_ -= entry.value.value;
    sum_ts_ -= static_cast<double>(entry.value.timestamp);
    if (entry.value.provenance == Provenance::kPredicted) --predicted_;
    if (!max_wedge_.empty() && max_wedge_.front().first == entry.id) {
      max_wedge_.pop_front();
    }
    if (!min_wedge_.empty() && min_wedge_.front().first == entry.id) {
      min_wedge_.pop_front();
    }
  }

  // Opportunistic flush after an append: skips (leaving entries staged for
  // the next flusher) rather than blocking a producer behind archive I/O.
  void TryFlushEvictions() {
    std::unique_lock<std::mutex> archive_lock(archive_mu_, std::try_to_lock);
    if (!archive_lock.owns_lock()) return;
    (void)FlushLocked();  // failures are counted in ArchiveFailures()
  }

  // Caller holds archive_mu_ (serializes flushers, keeping archive order).
  // A record that still fails after the archiver's retry policy is counted
  // and dropped (blocking producers forever on a dead disk would be worse);
  // the first error of the batch is returned so flush callers can react.
  Status FlushLocked() {
    std::vector<Entry> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      batch.swap(evict_pending_);
    }
    if (batch.empty()) return Status::Ok();
    TRACE_SPAN("stream.flush_evictions");
    GlobalTelemetry().stream_evictions.fetch_add(batch.size(),
                                                 std::memory_order_relaxed);
    Status result = Status::Ok();
    for (const Entry& entry : batch) {
      Status status =
          archiver_->AppendWithRetry(entry.id, entry.timestamp, entry.value);
      if (!status.ok()) {
        archive_failures_.fetch_add(1, std::memory_order_acq_rel);
        if (result.ok()) result = status;
      }
    }
    batch.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (evict_pending_.empty()) evict_pending_.swap(batch);  // keep capacity
    return result;
  }

  const std::size_t capacity_;
  Archiver<T>* archiver_;
  std::atomic<bool> degraded_{false};
  std::atomic<std::uint64_t> archive_failures_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::mutex archive_mu_;  // serializes eviction flushes (see FlushLocked)

  // Ring indexed by id & mask_; live ids are [first_id_, next_id_).
  std::vector<Entry> ring_;
  std::size_t mask_ = 0;
  std::uint64_t first_id_ = 0;
  std::uint64_t next_id_ = 0;
  // Ids below this were restored from the archive (see RestoreWindow) and
  // must not be re-archived on eviction.
  std::uint64_t restore_limit_ = 0;
  std::vector<Entry> evict_pending_;

  // Rolling aggregate index (Sample streams only; guarded by mu_). Wedges
  // hold (id, value) in monotone order so window min/max evict in O(1).
  double sum_value_ = 0.0;
  double sum_ts_ = 0.0;
  std::uint64_t predicted_ = 0;
  bool ts_mismatch_ = false;
  std::deque<std::pair<std::uint64_t, double>> max_wedge_;
  std::deque<std::pair<std::uint64_t, double>> min_wedge_;
};

// The telemetry stream type used throughout SCoRe.
using TelemetryStream = Stream<Sample>;

}  // namespace apollo
