// Stream<T>: in-memory append-only timestamped log with cursor-based
// consumption — the Redis Streams substitute.
//
// Semantics mirrored from Redis Streams:
//  - entries get monotonically increasing ids on append;
//  - any number of independent consumers read from their own cursor (XREAD);
//  - a blocking read waits until an entry past the cursor arrives;
//  - the in-memory window is bounded (XTRIM ~ maxlen) and evicted entries
//    are handed to an optional Archiver.
//
// Appends are mutex-protected: the queue-side throughput in Figure 6 is
// dominated by fan-in contention which this reproduces faithfully.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "pubsub/archiver.h"
#include "pubsub/telemetry.h"

namespace apollo {

template <typename T>
struct StreamEntry {
  std::uint64_t id = 0;
  TimeNs timestamp = 0;
  T value{};
};

template <typename T>
class Stream {
 public:
  using Entry = StreamEntry<T>;

  // `capacity` bounds the in-memory window; `archiver` (optional, not owned)
  // receives evicted entries.
  explicit Stream(std::size_t capacity = 4096,
                  Archiver<T>* archiver = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), archiver_(archiver) {}

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Appends an entry; returns its id. Thread-safe (multi-producer).
  std::uint64_t Append(TimeNs timestamp, T value) {
    std::unique_lock<std::mutex> lock(mu_);
    const std::uint64_t id = next_id_++;
    entries_.push_back(Entry{id, timestamp, std::move(value)});
    if (entries_.size() > capacity_) {
      const Entry& victim = entries_.front();
      if (archiver_ != nullptr) {
        archiver_->Append(victim.id, victim.timestamp, victim.value);
      }
      entries_.pop_front();
    }
    lock.unlock();
    cv_.notify_all();
    return id;
  }

  // Reads up to `max_entries` entries with id >= cursor; advances cursor
  // past the last returned entry. Non-blocking.
  std::vector<Entry> Read(std::uint64_t& cursor,
                          std::size_t max_entries = SIZE_MAX) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry> out;
    auto it = LowerBoundById(cursor);
    for (; it != entries_.end() && out.size() < max_entries; ++it) {
      out.push_back(*it);
    }
    if (!out.empty()) cursor = out.back().id + 1;
    return out;
  }

  // Blocks until an entry with id >= cursor exists or the real-time deadline
  // passes. Returns true when data is available. (Used only in real-clock
  // runs; sim-clock vertices poll from timer callbacks instead.)
  bool WaitFor(std::uint64_t cursor,
               std::chrono::nanoseconds timeout) const {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] {
      return next_id_ > cursor;
    });
  }

  // Most recent entry, if any.
  std::optional<Entry> Latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.empty()) return std::nullopt;
    return entries_.back();
  }

  // All in-memory entries with timestamp in [from_ts, to_ts]. Entries are
  // appended in non-decreasing timestamp order, so binary search applies.
  std::vector<Entry> RangeByTime(TimeNs from_ts, TimeNs to_ts) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry> out;
    auto lo = std::lower_bound(
        entries_.begin(), entries_.end(), from_ts,
        [](const Entry& e, TimeNs t) { return e.timestamp < t; });
    for (auto it = lo; it != entries_.end() && it->timestamp <= to_ts; ++it) {
      out.push_back(*it);
    }
    return out;
  }

  // Latest entry at or before `ts` (the "value as of time t" query).
  std::optional<Entry> LatestAtOrBefore(TimeNs ts) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::upper_bound(
        entries_.begin(), entries_.end(), ts,
        [](TimeNs t, const Entry& e) { return t < e.timestamp; });
    if (it == entries_.begin()) return std::nullopt;
    return *std::prev(it);
  }

  // Next id that will be assigned; a cursor initialized to this value sees
  // only future entries.
  std::uint64_t NextId() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_id_;
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  std::size_t Capacity() const { return capacity_; }
  Archiver<T>* archiver() const { return archiver_; }

 private:
  typename std::deque<Entry>::const_iterator LowerBoundById(
      std::uint64_t id) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const Entry& e, std::uint64_t target) { return e.id < target; });
  }

  const std::size_t capacity_;
  Archiver<T>* archiver_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::deque<Entry> entries_;
  std::uint64_t next_id_ = 0;
};

// The telemetry stream type used throughout SCoRe.
using TelemetryStream = Stream<Sample>;

}  // namespace apollo
