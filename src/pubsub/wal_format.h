// WAL segment format for the Archiver's crash-safe on-disk log.
//
// A segment file is a fixed header followed by length-prefixed, CRC32C-
// checksummed records (all integers little-endian):
//
//   SegmentHeader (16 bytes):
//     u32 magic        "AWAL" (0x4C415741)
//     u32 version      format version (currently 1)
//     u32 payload_size expected record payload size; 0 = variable-length
//     u32 header_crc   CRC32C over the first 12 bytes
//   Record frame (8 + length bytes), repeated:
//     u32 length       payload byte count
//     u32 crc          CRC32C over the payload bytes
//     u8  payload[length]
//
// The scanner walks a buffer front to back and stops at the first frame
// that does not fully parse: short header, length out of bounds, length
// mismatching a fixed payload_size, a frame extending past the buffer
// (torn tail), or a CRC mismatch. Everything before that point is the
// valid prefix; everything after is unrecoverable without record sync
// markers and is reported as dropped bytes so the caller can truncate or
// quarantine. The scanner never reads past `size` — it is the fuzz target
// behind APOLLO_FUZZ.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>

namespace apollo::wal {

inline constexpr std::uint32_t kMagic = 0x4C415741u;  // "AWAL"
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kFrameOverhead = 8;  // u32 length + u32 crc
// Upper bound on a record payload: rejects absurd lengths produced by
// corrupt length fields before they can drive a huge read.
inline constexpr std::uint32_t kMaxRecordLen = 1u << 20;

// CRC32C (Castagnoli). `seed` chains partial computations.
std::uint32_t Crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

// Writes a 16-byte segment header into `out` (at least kHeaderSize bytes).
void EncodeHeader(std::uint8_t* out, std::uint32_t payload_size);

// Validates magic, version, and header CRC. On success stores the
// segment's payload_size hint. Returns false for anything malformed.
bool DecodeHeader(const std::uint8_t* data, std::size_t size,
                  std::uint32_t* payload_size);

// Appends one record frame (length, crc, payload) for `payload` to `out`
// (at least kFrameOverhead + len bytes). Returns the frame size.
std::size_t EncodeRecord(std::uint8_t* out, const void* payload,
                         std::uint32_t len);

struct ScanResult {
  bool header_ok = false;   // magic/version/header CRC all valid
  bool clean = false;       // header_ok and no dropped bytes
  std::uint64_t records = 0;      // fully valid records visited
  std::uint64_t valid_bytes = 0;  // header + valid record frames
  std::uint64_t dropped_bytes = 0;  // size - valid_bytes (torn/corrupt)
};

// Scans a whole segment image. `visit` (may be null) is called once per
// valid record with the payload bytes, in order. A bad header yields
// header_ok = false with every byte dropped.
ScanResult ScanBuffer(
    const std::uint8_t* data, std::size_t size,
    const std::function<void(const std::uint8_t* payload,
                             std::uint32_t len)>& visit = nullptr);

}  // namespace apollo::wal
