// Archiver: crash-safe append-only log for entries evicted from an
// in-memory stream.
//
// Each SCoRe vertex holds a dedicated in-memory queue plus an Archiver that
// persists evicted entries; the Query Executor falls back to the archive for
// historical reads (timestamp ranges older than the in-memory window), and
// ApolloService::Recover() replays the archive tail to rebuild stream
// windows after a restart.
//
// File mode is a WAL (see pubsub/wal_format.h): records are length-prefixed
// and CRC32C-checksummed inside size-rotated segment files
// `<base>.<seq>.wal`, with an optional retention cap and a configurable
// fsync policy. Opening an existing archive is append-safe: segments are
// scanned, a torn/corrupt tail is truncated to the last valid record, and
// unreadable segments are quarantined (renamed `.corrupt`) — every
// recovered and dropped byte is counted. Appends are atomic: a failed
// write, flush, or fsync rolls the segment back to the pre-record offset,
// so retries can never duplicate or interleave a record.
//
// Failed writes are never silent: Append surfaces a Status, AppendWithRetry
// adds bounded exponential backoff, and every outcome is counted both here
// and in the global TelemetryCounters. An attached FaultInjector can force
// write failures (site kArchiveWrite) and fsync failures (kArchiveFsync)
// for chaos and kill-and-restart tests.
//
// Record payload layout (binary, little-endian, fixed size):
//   u64 id | i64 timestamp | T payload (trivially copyable)
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "pubsub/cold_reader.h"
#include "pubsub/telemetry.h"
#include "pubsub/wal_format.h"

namespace apollo {

// When the archiver calls fsync on its active segment.
enum class FsyncPolicy : std::uint8_t {
  kNever,     // leave durability to the OS (process death still safe)
  kInterval,  // at most once per fsync_interval of real time
  kEveryN,    // after every fsync_every_n appended records
};

struct WalConfig {
  // Rotate the active segment once it would exceed this many bytes.
  std::size_t segment_bytes = 4u << 20;
  // Retention cap: delete the oldest segment when the live count exceeds
  // this. 0 = unlimited (keep the full history).
  std::size_t max_segments = 0;
  FsyncPolicy fsync_policy = FsyncPolicy::kNever;
  std::uint64_t fsync_every_n = 64;       // kEveryN
  TimeNs fsync_interval = Seconds(1);     // kInterval (real clock)
};

// What an append-safe open found: how much of the existing archive
// survived, and how much had to be cut or quarantined.
struct ArchiveRecoveryStats {
  std::uint64_t segments_scanned = 0;
  std::uint64_t records_recovered = 0;
  std::uint64_t bytes_truncated = 0;      // torn/corrupt bytes cut from tails
  std::uint64_t corrupt_segments = 0;     // had any truncation or quarantine
  std::uint64_t quarantined_segments = 0; // renamed *.corrupt (bad header)
};

// Non-template WAL engine behind Archiver<T>: segment files, rotation,
// retention, fsync policy, and startup recovery over fixed-size payloads.
// Not internally synchronized — Archiver<T> serializes all calls.
class ArchiveLog {
 public:
  // `base_path` is the logical archive name; segments live at
  // `<base_path>.<seq>.wal`. Call Open() before anything else.
  ArchiveLog(std::string base_path, std::uint32_t payload_size,
             WalConfig config);
  ~ArchiveLog();

  ArchiveLog(const ArchiveLog&) = delete;
  ArchiveLog& operator=(const ArchiveLog&) = delete;

  // Scans existing segments (recovering valid prefixes, truncating torn
  // tails, quarantining unreadable segments) and opens the newest for
  // append. Creates the first segment when none exist.
  Status Open();

  // Appends one payload_size-byte record. Atomic: on any write/flush/fsync
  // failure the segment is rolled back to its pre-record length and an
  // error is returned, so a retry cannot duplicate the record.
  Status Append(const void* payload);

  // Flushes and fsyncs the active segment regardless of policy.
  Status Sync();

  // Visits every record payload across live segments in append order.
  // Stops early (and reports kIoError) if a segment cannot be read back.
  Status ForEach(const std::function<void(const void* payload)>& fn);

  // Like ForEach but only the last `n` records, skipping whole segments
  // that lie entirely before the tail.
  Status ForEachTail(std::uint64_t n,
                     const std::function<void(const void* payload)>& fn);

  std::uint64_t record_count() const { return record_count_; }
  const ArchiveRecoveryStats& recovery() const { return recovery_; }
  const std::string& base_path() const { return base_path_; }
  std::vector<std::string> SegmentPaths() const;
  std::string ActiveSegmentPath() const;
  std::uint64_t rotations() const { return rotations_; }
  std::uint64_t fsyncs() const { return fsyncs_; }

  // Sealed (non-active) segments as (seq, path, records), seq-ascending.
  // Sealed files are immutable: the compactor reads them without any lock.
  struct SealedSegment {
    std::uint64_t seq;
    std::string path;
    std::uint64_t records;
  };
  std::vector<SealedSegment> SealedSegments() const;

  // Deletes every sealed segment with seq <= `through_seq` (the active
  // segment is never dropped). Used after those segments' rows are
  // manifest-committed to the cold tier; idempotent across crashes.
  // Returns how many segment files were removed.
  std::uint64_t DropSegmentsThrough(std::uint64_t through_seq);

  // Retention gate: when set, ApplyRetention only deletes a sealed
  // segment the gate approves (the cold tier approves manifest-committed
  // sequences). Without a gate, max_segments deletes blindly — the PR 3
  // behavior — which can drop a sealed segment that was never compacted.
  void set_retention_gate(std::function<bool(std::uint64_t)> gate) {
    retention_gate_ = std::move(gate);
  }

  // kArchiveFsync faults are evaluated against `label` before each real
  // fsync. Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) { fault_ = injector; }
  void set_fault_label(std::string label) { label_ = std::move(label); }

 private:
  struct Segment {
    std::uint64_t seq = 0;
    std::string path;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };

  std::string SegmentPathFor(std::uint64_t seq) const;
  Status OpenActive(bool fresh);
  Status RotateLocked();
  Status ApplyRetentionLocked();
  Status SyncLocked();
  // Truncates the active segment back to `offset` after a failed append.
  void RollbackActive(std::uint64_t offset);
  Status ScanSegmentFile(const std::string& path,
                         std::vector<std::uint8_t>& buf,
                         wal::ScanResult& result,
                         const std::function<void(const void*)>& fn) const;

  std::string base_path_;
  std::uint32_t payload_size_;
  WalConfig config_;
  std::string label_;
  FaultInjector* fault_ = nullptr;
  std::function<bool(std::uint64_t)> retention_gate_;

  std::vector<Segment> segments_;  // seq-ascending; back() is active
  std::FILE* active_ = nullptr;
  std::uint64_t record_count_ = 0;       // live records across segments
  std::uint64_t appends_since_sync_ = 0;
  TimeNs last_sync_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t fsyncs_ = 0;
  ArchiveRecoveryStats recovery_;
  std::vector<std::uint8_t> frame_;  // scratch encode buffer
};

template <typename T>
class Archiver {
  static_assert(std::is_trivially_copyable_v<T>,
                "Archiver requires a trivially copyable payload");

 public:
  struct Record {
    std::uint64_t id;
    TimeNs timestamp;
    T payload;
  };

  // Opens the archive append-safe, recovering any records a previous
  // process left in the segment files (see ArchiveLog). An empty path
  // keeps the archive purely in memory — convenient for tests and sim
  // runs. A path that cannot be opened degrades to in-memory (check
  // OpenStatus()).
  explicit Archiver(std::string path = "", WalConfig config = {})
      : path_(std::move(path)) {
    if (!path_.empty()) {
      auto log = std::make_unique<ArchiveLog>(
          path_, static_cast<std::uint32_t>(sizeof(Record)), config);
      open_status_ = log->Open();
      if (open_status_.ok()) log_ = std::move(log);
    }
  }

  ~Archiver() = default;

  Archiver(const Archiver&) = delete;
  Archiver& operator=(const Archiver&) = delete;

  // Chaos-test hooks: injected faults fire at kArchiveWrite (pre-append)
  // and kArchiveFsync (pre-fsync), filtered by `label` (defaults to the
  // file path). Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    if (log_ != nullptr) log_->AttachFaultInjector(injector);
  }
  void set_fault_label(std::string label) {
    std::lock_guard<std::mutex> lock(mu_);
    label_ = label;
    if (log_ != nullptr) log_->set_fault_label(std::move(label));
  }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  Status Append(std::uint64_t id, TimeNs timestamp, const T& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return AppendLocked(id, timestamp, payload);
  }

  // Append with the archiver's retry policy: transient failures back off
  // exponentially (real sleep — archiver flushes run off the stream lock),
  // and the final outcome is recorded in failures()/last_error(). Safe to
  // retry: a failed file append leaves no partial record behind.
  Status AppendWithRetry(std::uint64_t id, TimeNs timestamp,
                         const T& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    Status status = AppendLocked(id, timestamp, payload);
    int attempt = 0;
    while (!status.ok() && RetryableError(status.code()) &&
           ++attempt < retry_.max_attempts) {
      GlobalTelemetry().archive_retries.fetch_add(1,
                                                  std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          JitteredBackoffForAttempt(retry_, attempt)));
      status = AppendLocked(id, timestamp, payload);
    }
    if (!status.ok()) RecordFailure(status);
    return status;
  }

  // Reads every archived record with timestamp in [from_ts, to_ts].
  // Sequential scan over all live segments — archives are cold storage,
  // latency is acceptable. Every record re-validates its checksum on the
  // way back in.
  Expected<std::vector<Record>> ReadRange(TimeNs from_ts, TimeNs to_ts) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Record> out;
    if (log_ != nullptr) {
      Status status = log_->ForEach([&](const void* payload) {
        Record rec;
        std::memcpy(&rec, payload, sizeof(rec));
        if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
          out.push_back(rec);
        }
      });
      if (!status.ok()) return Error(status.code(), status.message());
      return out;
    }
    for (const Record& rec : memory_) {
      if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
        out.push_back(rec);
      }
    }
    return out;
  }

  // The newest `n` archived records in append order — the recovery path
  // uses this to rebuild a stream's in-memory window.
  Expected<std::vector<Record>> TailRecords(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Record> out;
    if (log_ != nullptr) {
      Status status = log_->ForEachTail(n, [&](const void* payload) {
        Record rec;
        std::memcpy(&rec, payload, sizeof(rec));
        out.push_back(rec);
      });
      if (!status.ok()) return Error(status.code(), status.message());
      // ForEachTail skips whole leading segments; trim the in-segment
      // overshoot.
      if (out.size() > n) out.erase(out.begin(), out.end() - n);
      return out;
    }
    const std::size_t take =
        std::min<std::size_t>(memory_.size(), static_cast<std::size_t>(n));
    out.assign(memory_.end() - take, memory_.end());
    return out;
  }

  // Forces the active segment to disk regardless of fsync policy.
  Status Sync() {
    std::lock_guard<std::mutex> lock(mu_);
    if (log_ == nullptr) return Status::Ok();
    return log_->Sync();
  }

  // Records reachable in the archive: recovered history plus this
  // lifetime's appends, minus anything retention has expired.
  std::uint64_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->record_count() : count_;
  }

  // Writes that stayed failed after retries, and the most recent error.
  std::uint64_t Failures() const {
    return failures_.load(std::memory_order_acquire);
  }
  Status LastError() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_error_;
  }

  // Fsyncs actually issued on the active segment (policy + explicit).
  std::uint64_t Fsyncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->fsyncs() : 0;
  }

  // What the append-safe open found (file mode; zeroes in memory mode).
  ArchiveRecoveryStats RecoveryStats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->recovery() : ArchiveRecoveryStats{};
  }

  std::vector<std::string> SegmentPaths() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->SegmentPaths()
                           : std::vector<std::string>{};
  }
  std::string ActiveSegmentPath() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->ActiveSegmentPath() : std::string();
  }

  const std::string& path() const { return path_; }
  bool InMemory() const { return log_ == nullptr; }
  // Why a file-backed open fell back to memory mode (Ok when healthy).
  Status OpenStatus() const { return open_status_; }

  // ---- cold tier hooks (file mode only; no-ops in memory mode) ----

  // Borrowed pointer to the cold tier that drains this archive. The
  // executor reads it lock-free on every scan; attach happens at deploy
  // time before queries run.
  void AttachColdReader(ColdReaderBase* cold) {
    cold_.store(cold, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu_);
    if (log_ != nullptr && cold != nullptr) {
      log_->set_retention_gate(
          [cold](std::uint64_t seq) { return cold->IsCompacted(seq); });
    }
  }
  ColdReaderBase* cold_reader() const {
    return cold_.load(std::memory_order_acquire);
  }

  std::vector<ArchiveLog::SealedSegment> SealedSegments() const {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->SealedSegments()
                           : std::vector<ArchiveLog::SealedSegment>{};
  }

  // Drops manifest-committed sealed segments; see ArchiveLog.
  std::uint64_t DropSegmentsThrough(std::uint64_t through_seq) {
    std::lock_guard<std::mutex> lock(mu_);
    return log_ != nullptr ? log_->DropSegmentsThrough(through_seq) : 0;
  }

 private:
  Status AppendLocked(std::uint64_t id, TimeNs timestamp, const T& payload) {
    if (FaultInjector* injector = fault_.load(std::memory_order_acquire)) {
      const std::string_view label = label_.empty() ? path_ : label_;
      if (auto action = injector->Evaluate(FaultSite::kArchiveWrite, label);
          action.has_value() && action->fails()) {
        GlobalTelemetry().archive_write_errors.fetch_add(
            1, std::memory_order_relaxed);
        return Status(ErrorCode::kIoError,
                      "injected archive write failure: " + path_);
      }
    }
    if (log_ != nullptr) {
      Record rec;
      // Zero padding bytes so the on-disk CRC is deterministic (Record is
      // trivially copyable; the cast silences -Wclass-memaccess).
      std::memset(static_cast<void*>(&rec), 0, sizeof(rec));
      rec.id = id;
      rec.timestamp = timestamp;
      rec.payload = payload;
      Status status = log_->Append(&rec);
      if (!status.ok()) return status;
      GlobalTelemetry().archive_writes.fetch_add(1,
                                                 std::memory_order_relaxed);
      return Status::Ok();
    }
    memory_.push_back(Record{id, timestamp, payload});
    ++count_;
    GlobalTelemetry().archive_writes.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  // Caller holds mu_.
  void RecordFailure(const Status& status) {
    failures_.fetch_add(1, std::memory_order_acq_rel);
    last_error_ = status;
    GlobalTelemetry().archive_write_failures.fetch_add(
        1, std::memory_order_relaxed);
  }

  std::string path_;
  std::string label_;
  std::unique_ptr<ArchiveLog> log_;
  Status open_status_;
  std::vector<Record> memory_;
  std::uint64_t count_ = 0;
  std::atomic<FaultInjector*> fault_{nullptr};
  std::atomic<ColdReaderBase*> cold_{nullptr};
  RetryPolicy retry_;
  std::atomic<std::uint64_t> failures_{0};
  Status last_error_;
  mutable std::mutex mu_;
};

}  // namespace apollo
