// Archiver: file-backed append-only log for entries evicted from an
// in-memory stream.
//
// Each SCoRe vertex holds a dedicated in-memory queue plus an Archiver that
// persists evicted entries; the Query Executor falls back to the archive for
// historical reads (timestamp ranges older than the in-memory window).
//
// Failed writes are never silent: Append surfaces a Status, AppendWithRetry
// adds bounded exponential backoff, and every outcome is counted both here
// and in the global TelemetryCounters. An attached FaultInjector can force
// write failures (site kArchiveWrite) for chaos tests.
//
// Record layout (binary, little-endian, fixed size):
//   u64 id | i64 timestamp | T payload (trivially copyable)
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "pubsub/telemetry.h"

namespace apollo {

template <typename T>
class Archiver {
  static_assert(std::is_trivially_copyable_v<T>,
                "Archiver requires a trivially copyable payload");

 public:
  struct Record {
    std::uint64_t id;
    TimeNs timestamp;
    T payload;
  };

  // Opens (creates/truncates) the archive file. An empty path keeps the
  // archive purely in memory — convenient for tests and sim runs.
  explicit Archiver(std::string path = "") : path_(std::move(path)) {
    if (!path_.empty()) {
      file_ = std::fopen(path_.c_str(), "wb+");
    }
  }

  ~Archiver() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Archiver(const Archiver&) = delete;
  Archiver& operator=(const Archiver&) = delete;

  // Chaos-test hooks: injected faults fire at kArchiveWrite, filtered by
  // `label` (defaults to the file path). Not owned; may be null.
  void AttachFaultInjector(FaultInjector* injector) {
    fault_.store(injector, std::memory_order_release);
  }
  void set_fault_label(std::string label) { label_ = std::move(label); }
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }

  Status Append(std::uint64_t id, TimeNs timestamp, const T& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    return AppendLocked(id, timestamp, payload);
  }

  // Append with the archiver's retry policy: transient failures back off
  // exponentially (real sleep — archiver flushes run off the stream lock),
  // and the final outcome is recorded in failures()/last_error().
  Status AppendWithRetry(std::uint64_t id, TimeNs timestamp,
                         const T& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    Status status = AppendLocked(id, timestamp, payload);
    int attempt = 0;
    while (!status.ok() && RetryableError(status.code()) &&
           ++attempt < retry_.max_attempts) {
      GlobalTelemetry().archive_retries.fetch_add(1,
                                                  std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(BackoffForAttempt(retry_, attempt)));
      status = AppendLocked(id, timestamp, payload);
    }
    if (!status.ok()) RecordFailure(status);
    return status;
  }

  // Reads every archived record with timestamp in [from_ts, to_ts].
  // Sequential scan — archives are cold storage, latency is acceptable.
  Expected<std::vector<Record>> ReadRange(TimeNs from_ts, TimeNs to_ts) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Record> out;
    if (file_ != nullptr) {
      std::fflush(file_);
      std::FILE* reader = std::fopen(path_.c_str(), "rb");
      if (reader == nullptr) {
        return Error(ErrorCode::kIoError, "archive open failed: " + path_);
      }
      Record rec;
      while (std::fread(&rec, sizeof(rec), 1, reader) == 1) {
        if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
          out.push_back(rec);
        }
      }
      std::fclose(reader);
      return out;
    }
    for (const Record& rec : memory_) {
      if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
        out.push_back(rec);
      }
    }
    return out;
  }

  std::uint64_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  // Writes that stayed failed after retries, and the most recent error.
  std::uint64_t Failures() const {
    return failures_.load(std::memory_order_acquire);
  }
  Status LastError() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_error_;
  }

  const std::string& path() const { return path_; }
  bool InMemory() const { return file_ == nullptr; }

 private:
  Status AppendLocked(std::uint64_t id, TimeNs timestamp, const T& payload) {
    if (FaultInjector* injector = fault_.load(std::memory_order_acquire)) {
      const std::string_view label = label_.empty() ? path_ : label_;
      if (auto action = injector->Evaluate(FaultSite::kArchiveWrite, label);
          action.has_value() && action->fails()) {
        return Status(ErrorCode::kIoError,
                      "injected archive write failure: " + path_);
      }
    }
    if (file_ != nullptr) {
      Record rec{id, timestamp, payload};
      if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1) {
        return Status(ErrorCode::kIoError, "archive write failed: " + path_);
      }
      ++count_;
      GlobalTelemetry().archive_writes.fetch_add(1,
                                                 std::memory_order_relaxed);
      return Status::Ok();
    }
    memory_.push_back(Record{id, timestamp, payload});
    ++count_;
    GlobalTelemetry().archive_writes.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }

  // Caller holds mu_.
  void RecordFailure(const Status& status) {
    failures_.fetch_add(1, std::memory_order_acq_rel);
    last_error_ = status;
    GlobalTelemetry().archive_write_failures.fetch_add(
        1, std::memory_order_relaxed);
  }

  std::string path_;
  std::string label_;
  std::FILE* file_ = nullptr;
  std::vector<Record> memory_;
  std::uint64_t count_ = 0;
  std::atomic<FaultInjector*> fault_{nullptr};
  RetryPolicy retry_;
  std::atomic<std::uint64_t> failures_{0};
  Status last_error_;
  mutable std::mutex mu_;
};

}  // namespace apollo
