// Archiver: file-backed append-only log for entries evicted from an
// in-memory stream.
//
// Each SCoRe vertex holds a dedicated in-memory queue plus an Archiver that
// persists evicted entries; the Query Executor falls back to the archive for
// historical reads (timestamp ranges older than the in-memory window).
//
// Record layout (binary, little-endian, fixed size):
//   u64 id | i64 timestamp | T payload (trivially copyable)
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"

namespace apollo {

template <typename T>
class Archiver {
  static_assert(std::is_trivially_copyable_v<T>,
                "Archiver requires a trivially copyable payload");

 public:
  struct Record {
    std::uint64_t id;
    TimeNs timestamp;
    T payload;
  };

  // Opens (creates/truncates) the archive file. An empty path keeps the
  // archive purely in memory — convenient for tests and sim runs.
  explicit Archiver(std::string path = "") : path_(std::move(path)) {
    if (!path_.empty()) {
      file_ = std::fopen(path_.c_str(), "wb+");
    }
  }

  ~Archiver() {
    if (file_ != nullptr) std::fclose(file_);
  }

  Archiver(const Archiver&) = delete;
  Archiver& operator=(const Archiver&) = delete;

  Status Append(std::uint64_t id, TimeNs timestamp, const T& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
      Record rec{id, timestamp, payload};
      if (std::fwrite(&rec, sizeof(rec), 1, file_) != 1) {
        return Status(ErrorCode::kIoError, "archive write failed: " + path_);
      }
      ++count_;
      return Status::Ok();
    }
    memory_.push_back(Record{id, timestamp, payload});
    ++count_;
    return Status::Ok();
  }

  // Reads every archived record with timestamp in [from_ts, to_ts].
  // Sequential scan — archives are cold storage, latency is acceptable.
  Expected<std::vector<Record>> ReadRange(TimeNs from_ts, TimeNs to_ts) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Record> out;
    if (file_ != nullptr) {
      std::fflush(file_);
      std::FILE* reader = std::fopen(path_.c_str(), "rb");
      if (reader == nullptr) {
        return Error(ErrorCode::kIoError, "archive open failed: " + path_);
      }
      Record rec;
      while (std::fread(&rec, sizeof(rec), 1, reader) == 1) {
        if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
          out.push_back(rec);
        }
      }
      std::fclose(reader);
      return out;
    }
    for (const Record& rec : memory_) {
      if (rec.timestamp >= from_ts && rec.timestamp <= to_ts) {
        out.push_back(rec);
      }
    }
    return out;
  }

  std::uint64_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

  const std::string& path() const { return path_; }
  bool InMemory() const { return file_ == nullptr; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<Record> memory_;
  std::uint64_t count_ = 0;
  mutable std::mutex mu_;
};

}  // namespace apollo
