// ColdReaderBase: how the archiver (and through it, AQE) sees the cold
// tier without depending on src/coldtier.
//
// The compactor drains sealed WAL segments into columnar blocks; once a
// segment is manifest-committed its rows leave the WAL and are only
// reachable here. Archiver<Sample> holds a borrowed pointer to the tier
// so the executor's scan path can extend a range read past the WAL
// retention horizon: cold rows are strictly older than every WAL row
// (compaction always drains the oldest sealed segments first).
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/expected.h"
#include "pubsub/telemetry.h"

namespace apollo {

// Per-scan accounting, surfaced through EXPLAIN ANALYZE.
struct ColdScanStats {
  std::uint64_t blocks_total = 0;    // blocks considered
  std::uint64_t blocks_pruned = 0;   // skipped via zone map
  std::uint64_t blocks_scanned = 0;  // decoded and row-filtered
  std::uint64_t rows_visited = 0;    // rows emitted to the visitor
  std::uint64_t blocks_quarantined = 0;  // failed decode, renamed .corrupt
  std::uint64_t read_errors = 0;     // unreadable/injected-fault blocks
};

class ColdReaderBase {
 public:
  virtual ~ColdReaderBase() = default;

  // Visits every cold row with timestamp in [from_ts, to_ts] in block
  // order (oldest block first, rows in stored order). Unreadable or
  // corrupt blocks are skipped and counted in `stats`, never fatal: the
  // scan still returns every row the healthy blocks hold.
  virtual Status ScanRange(
      TimeNs from_ts, TimeNs to_ts,
      const std::function<void(std::uint64_t id, TimeNs timestamp,
                               const Sample& sample)>& visit,
      ColdScanStats* stats) = 0;

  // Total rows committed to the cold tier (from the manifest; no file IO).
  virtual std::uint64_t ColdRowCount() const = 0;

  // True when `seq` is covered by the committed manifest — the WAL may
  // delete that segment. Lock-free; called under archiver locks.
  virtual bool IsCompacted(std::uint64_t wal_seq) const = 0;
};

}  // namespace apollo
