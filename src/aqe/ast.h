// AST for the Apollo Query Engine's query dialect.
//
// The dialect covers the paper's resource queries (§4.4.1):
//   SELECT MAX(Timestamp), metric FROM pfs_capacity
//   UNION
//   SELECT MAX(Timestamp), metric FROM node_1_memory_capacity ...;
//
// plus aggregates, WHERE on timestamp/metric/provenance, ORDER BY and
// LIMIT. Tables are SCoRe topics; columns are the Information tuple fields
// (timestamp, metric, predicted).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace apollo::aqe {

enum class Aggregate {
  kNone,   // plain column reference
  kMax,
  kMin,
  kAvg,
  kSum,
  kCount,
  kLast,   // value of the row with the max timestamp
};

enum class Column { kTimestamp, kMetric, kPredicted, kStar };

struct SelectItem {
  Aggregate aggregate = Aggregate::kNone;
  Column column = Column::kMetric;
};

enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

struct Condition {
  Column column = Column::kTimestamp;
  CompareOp op = CompareOp::kEq;
  double value = 0.0;
};

struct OrderBy {
  Column column = Column::kTimestamp;
  bool descending = false;
};

struct Select {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<Condition> where;  // implicitly ANDed
  std::optional<OrderBy> order_by;
  std::optional<std::uint64_t> limit;
};

struct Query {
  // UNION of per-table selects — each resolves independently (and in
  // parallel) against its vertex.
  std::vector<Select> selects;
  // SUBSCRIBE ... [EVERY n unit]: a continuous query. Instead of one
  // answer, the daemon pushes an incremental update whenever the
  // materialized row changes, at most once per `every_ns` (0 = on every
  // publish tick).
  bool continuous = false;
  std::int64_t every_ns = 0;
};

const char* AggregateName(Aggregate agg);
const char* ColumnName(Column col);

}  // namespace apollo::aqe
