// Fluent builder for AQE queries — clients compose ASTs directly instead
// of concatenating SQL strings.
//
//   Query q = QueryBuilder()
//                 .Select(Aggregate::kMax, Column::kTimestamp)
//                 .Select(Column::kMetric)
//                 .From("pfs_capacity")
//                 .Union()
//                 .Select(Aggregate::kMax, Column::kTimestamp)
//                 .Select(Column::kMetric)
//                 .From("node_1_memory_capacity")
//                 .Build();
//
// LatestValueQuery(topics) produces the paper's resource query (§4.4.1)
// for a set of tables in one call.
#pragma once

#include <string>
#include <vector>

#include "aqe/ast.h"
#include "common/clock.h"

namespace apollo::aqe {

class QueryBuilder {
 public:
  QueryBuilder() { StartSelect(); }

  QueryBuilder& Select(Column column) {
    current_.items.push_back(SelectItem{Aggregate::kNone, column});
    return *this;
  }
  QueryBuilder& Select(Aggregate aggregate, Column column) {
    current_.items.push_back(SelectItem{aggregate, column});
    return *this;
  }

  QueryBuilder& From(const std::string& table) {
    current_.table = table;
    return *this;
  }

  QueryBuilder& Where(Column column, CompareOp op, double value) {
    current_.where.push_back(Condition{column, op, value});
    return *this;
  }

  // Timestamp range shortcut: from <= timestamp <= to.
  QueryBuilder& WhereTimeRange(TimeNs from, TimeNs to) {
    Where(Column::kTimestamp, CompareOp::kGe, static_cast<double>(from));
    Where(Column::kTimestamp, CompareOp::kLe, static_cast<double>(to));
    return *this;
  }

  // Provenance shortcut.
  QueryBuilder& WhereMeasuredOnly() {
    return Where(Column::kPredicted, CompareOp::kEq, 0.0);
  }

  QueryBuilder& OrderByColumn(Column column, bool descending = false) {
    current_.order_by = OrderBy{column, descending};
    return *this;
  }

  QueryBuilder& Limit(std::uint64_t n) {
    current_.limit = n;
    return *this;
  }

  // Finishes the current SELECT and starts a new UNION branch.
  QueryBuilder& Union() {
    Flush();
    StartSelect();
    return *this;
  }

  Query Build() {
    Flush();
    return std::move(query_);
  }

 private:
  void StartSelect() { current_ = aqe::Select{}; }
  void Flush() {
    if (!current_.items.empty() || !current_.table.empty()) {
      query_.selects.push_back(std::move(current_));
    }
    current_ = aqe::Select{};
  }

  Query query_;
  aqe::Select current_;
};

// The paper's resource query: latest (timestamp, value) of each table.
Query LatestValueQuery(const std::vector<std::string>& tables);

// Serializes a query back to its textual form (round-trips through
// Parse()). Useful for logging and tests.
std::string ToString(const Query& query);

}  // namespace apollo::aqe
