// Recursive-descent parser for the AQE query dialect (see ast.h).
#pragma once

#include <string>

#include "aqe/ast.h"
#include "common/expected.h"

namespace apollo::aqe {

// Parses a query string. Keywords are case-insensitive; identifiers
// (table names) are case-sensitive. A trailing semicolon is optional.
Expected<Query> Parse(const std::string& text);

}  // namespace apollo::aqe
