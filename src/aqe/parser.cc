#include "aqe/parser.h"

#include <cctype>
#include <cstdlib>

namespace apollo::aqe {

const char* AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kNone:
      return "";
    case Aggregate::kMax:
      return "MAX";
    case Aggregate::kMin:
      return "MIN";
    case Aggregate::kAvg:
      return "AVG";
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kLast:
      return "LAST";
  }
  return "?";
}

const char* ColumnName(Column col) {
  switch (col) {
    case Column::kTimestamp:
      return "timestamp";
    case Column::kMetric:
      return "metric";
    case Column::kPredicted:
      return "predicted";
    case Column::kStar:
      return "*";
  }
  return "?";
}

namespace {

enum class TokKind { kIdent, kNumber, kSymbol, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // uppercased for idents when matching keywords
  std::string raw;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Expected<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    std::size_t i = 0;
    const std::size_t n = text_.size();
    while (i < n) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = i;
        while (i < n && (std::isalnum(static_cast<unsigned char>(text_[i])) ||
                         text_[i] == '_' || text_[i] == '.')) {
          ++i;
        }
        Token tok;
        tok.kind = TokKind::kIdent;
        tok.raw = text_.substr(start, i - start);
        tok.text = Upper(tok.raw);
        tokens.push_back(tok);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+') {
        char* end = nullptr;
        const double value = std::strtod(text_.c_str() + i, &end);
        if (end == text_.c_str() + i) {
          return Error(ErrorCode::kParseError,
                       "bad number at offset " + std::to_string(i));
        }
        Token tok;
        tok.kind = TokKind::kNumber;
        tok.number = value;
        tok.raw = text_.substr(i, static_cast<std::size_t>(
                                      end - (text_.c_str() + i)));
        i = static_cast<std::size_t>(end - text_.c_str());
        tokens.push_back(tok);
        continue;
      }
      // Multi-char comparison operators.
      if ((c == '<' || c == '>' || c == '!' || c == '=') && i + 1 < n &&
          text_[i + 1] == '=') {
        tokens.push_back(Token{TokKind::kSymbol, text_.substr(i, 2),
                               text_.substr(i, 2), 0.0});
        i += 2;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' ||
          c == '<' || c == '>' || c == '=') {
        tokens.push_back(Token{TokKind::kSymbol, std::string(1, c),
                               std::string(1, c), 0.0});
        ++i;
        continue;
      }
      return Error(ErrorCode::kParseError,
                   std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(Token{TokKind::kEnd, "", "", 0.0});
    return tokens;
  }

 private:
  static std::string Upper(const std::string& s) {
    std::string out = s;
    for (char& c : out) c = static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
    return out;
  }

  const std::string& text_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<Query> Run() {
    Query query;
    // SUBSCRIBE SELECT ... [EVERY n unit]; — the continuous-query form.
    if (MatchKeyword("SUBSCRIBE")) query.continuous = true;
    for (;;) {
      auto select = ParseSelect();
      if (!select.ok()) return select.error();
      query.selects.push_back(std::move(*select));
      if (MatchKeyword("UNION")) {
        // Accept optional ALL.
        MatchKeyword("ALL");
        continue;
      }
      break;
    }
    if (MatchKeyword("EVERY")) {
      if (!query.continuous) {
        return Error(ErrorCode::kParseError,
                     "EVERY is only valid after SUBSCRIBE");
      }
      if (Peek().kind != TokKind::kNumber) {
        return Error(ErrorCode::kParseError, "expected number after EVERY");
      }
      const double n = Advance().number;
      if (n < 0) {
        return Error(ErrorCode::kParseError, "EVERY interval must be >= 0");
      }
      std::int64_t scale = 0;
      if (MatchKeyword("NS")) scale = 1;
      else if (MatchKeyword("US")) scale = 1000;
      else if (MatchKeyword("MS")) scale = 1000 * 1000;
      else if (MatchKeyword("S") || MatchKeyword("SEC") ||
               MatchKeyword("SECONDS")) {
        scale = 1000 * 1000 * 1000;
      } else {
        return Error(ErrorCode::kParseError,
                     "expected time unit (ns|us|ms|s) near '" + Peek().raw +
                         "'");
      }
      query.every_ns = static_cast<std::int64_t>(n *
                                                 static_cast<double>(scale));
    }
    MatchSymbol(";");
    if (Peek().kind != TokKind::kEnd) {
      return Error(ErrorCode::kParseError,
                   "trailing input near '" + Peek().raw + "'");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchSymbol(const std::string& sym) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expected<Column> ParseColumn() {
    if (MatchSymbol("*")) return Column::kStar;
    if (Peek().kind != TokKind::kIdent) {
      return Error(ErrorCode::kParseError,
                   "expected column near '" + Peek().raw + "'");
    }
    const std::string name = Advance().text;
    if (name == "TIMESTAMP") return Column::kTimestamp;
    if (name == "METRIC" || name == "VALUE") return Column::kMetric;
    if (name == "PREDICTED" || name == "PROVENANCE") {
      return Column::kPredicted;
    }
    return Error(ErrorCode::kParseError, "unknown column: " + name);
  }

  Expected<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().kind == TokKind::kIdent) {
      const std::string name = Peek().text;
      Aggregate agg = Aggregate::kNone;
      if (name == "MAX") agg = Aggregate::kMax;
      else if (name == "MIN") agg = Aggregate::kMin;
      else if (name == "AVG") agg = Aggregate::kAvg;
      else if (name == "SUM") agg = Aggregate::kSum;
      else if (name == "COUNT") agg = Aggregate::kCount;
      else if (name == "LAST") agg = Aggregate::kLast;
      if (agg != Aggregate::kNone) {
        ++pos_;
        if (!MatchSymbol("(")) {
          return Error(ErrorCode::kParseError,
                       "expected '(' after " + name);
        }
        auto column = ParseColumn();
        if (!column.ok()) return column.error();
        if (!MatchSymbol(")")) {
          return Error(ErrorCode::kParseError,
                       "expected ')' in " + name + "(...)");
        }
        if (*column == Column::kStar && agg != Aggregate::kCount) {
          return Error(ErrorCode::kParseError,
                       "'*' only valid inside COUNT(*)");
        }
        item.aggregate = agg;
        item.column = *column;
        return item;
      }
    }
    auto column = ParseColumn();
    if (!column.ok()) return column.error();
    if (*column == Column::kStar) {
      return Error(ErrorCode::kParseError,
                   "bare '*' select is not supported; name the columns");
    }
    item.column = *column;
    return item;
  }

  // Appends one condition — or two for `col BETWEEN lo AND hi`, which
  // desugars to `col >= lo AND col <= hi`. The BETWEEN owns its AND, so
  // the WHERE loop never mistakes it for a conjunction.
  Status ParseCondition(std::vector<Condition>& out) {
    auto column = ParseColumn();
    if (!column.ok()) return column.error();
    if (MatchKeyword("BETWEEN")) {
      if (Peek().kind != TokKind::kNumber) {
        return Error(ErrorCode::kParseError,
                     "expected number after BETWEEN near '" + Peek().raw +
                         "'");
      }
      const double lo = Advance().number;
      if (!MatchKeyword("AND")) {
        return Error(ErrorCode::kParseError,
                     "expected AND in BETWEEN near '" + Peek().raw + "'");
      }
      if (Peek().kind != TokKind::kNumber) {
        return Error(ErrorCode::kParseError,
                     "expected number after BETWEEN .. AND near '" +
                         Peek().raw + "'");
      }
      const double hi = Advance().number;
      out.push_back(Condition{*column, CompareOp::kGe, lo});
      out.push_back(Condition{*column, CompareOp::kLe, hi});
      return Status::Ok();
    }
    if (Peek().kind != TokKind::kSymbol) {
      return Error(ErrorCode::kParseError,
                   "expected comparison operator near '" + Peek().raw + "'");
    }
    const std::string op_text = Advance().text;
    CompareOp op;
    if (op_text == "<") op = CompareOp::kLt;
    else if (op_text == "<=") op = CompareOp::kLe;
    else if (op_text == ">") op = CompareOp::kGt;
    else if (op_text == ">=") op = CompareOp::kGe;
    else if (op_text == "=" || op_text == "==") op = CompareOp::kEq;
    else if (op_text == "!=") op = CompareOp::kNe;
    else {
      return Error(ErrorCode::kParseError, "bad operator: " + op_text);
    }
    if (Peek().kind != TokKind::kNumber) {
      return Error(ErrorCode::kParseError,
                   "expected number near '" + Peek().raw + "'");
    }
    const double value = Advance().number;
    out.push_back(Condition{*column, op, value});
    return Status::Ok();
  }

  Expected<Select> ParseSelect() {
    if (!MatchKeyword("SELECT")) {
      return Error(ErrorCode::kParseError,
                   "expected SELECT near '" + Peek().raw + "'");
    }
    Select select;
    for (;;) {
      auto item = ParseSelectItem();
      if (!item.ok()) return item.error();
      select.items.push_back(*item);
      if (!MatchSymbol(",")) break;
    }
    if (!MatchKeyword("FROM")) {
      return Error(ErrorCode::kParseError,
                   "expected FROM near '" + Peek().raw + "'");
    }
    if (Peek().kind != TokKind::kIdent) {
      return Error(ErrorCode::kParseError,
                   "expected table name near '" + Peek().raw + "'");
    }
    select.table = Advance().raw;

    if (MatchKeyword("WHERE")) {
      for (;;) {
        Status cond = ParseCondition(select.where);
        if (!cond.ok()) return Error(cond.code(), cond.message());
        if (!MatchKeyword("AND")) break;
      }
    }
    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) {
        return Error(ErrorCode::kParseError, "expected BY after ORDER");
      }
      auto column = ParseColumn();
      if (!column.ok()) return column.error();
      OrderBy order;
      order.column = *column;
      if (MatchKeyword("DESC")) order.descending = true;
      else MatchKeyword("ASC");
      select.order_by = order;
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().kind != TokKind::kNumber) {
        return Error(ErrorCode::kParseError, "expected number after LIMIT");
      }
      select.limit = static_cast<std::uint64_t>(Advance().number);
    }
    return select;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Query> Parse(const std::string& text) {
  Lexer lexer(text);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(*tokens));
  return parser.Run();
}

}  // namespace apollo::aqe
