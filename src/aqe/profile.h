// Query profiles returned by Executor::Explain — the AQE's answer to
// EXPLAIN / EXPLAIN ANALYZE. One VertexProfile per UNION branch records
// which access strategy served the branch (the O(1) latest fast path, the
// rolling-aggregate index, a window scan, or a scan merged with archived
// rows), how many rows it touched, and — under ANALYZE — how long the
// branch took on the broker's clock (deterministic under SimClock).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace apollo::aqe {

struct VertexProfile {
  std::string topic;
  bool resolved = false;        // handle valid at plan/exec time
  std::string strategy;         // latest | index | scan | scan+archive[+cold]
  std::uint64_t rows_scanned = 0;   // window + archive entries visited
  std::uint64_t rows_matched = 0;   // entries passing WHERE
  std::uint64_t rows_returned = 0;  // rows emitted to the result set
  std::uint64_t archive_rows = 0;   // archived entries merged into the scan
  std::uint64_t cold_rows = 0;      // cold-tier rows merged into the scan
  std::uint64_t cold_blocks_scanned = 0;  // blocks decoded for this branch
  std::uint64_t cold_blocks_pruned = 0;   // blocks skipped via zone maps
  bool degraded = false;
  TimeNs staleness_ns = 0;
  TimeNs exec_ns = 0;  // ANALYZE only; broker-clock elapsed
};

struct QueryProfile {
  std::string query_text;
  bool analyzed = false;        // EXPLAIN ANALYZE (executed) vs EXPLAIN
  bool plan_cache_hit = false;  // plan came from the text-keyed cache
  bool parallel = false;        // branches fanned out on the thread pool
  std::vector<VertexProfile> vertices;
  bool degraded = false;        // any branch degraded
  TimeNs max_staleness_ns = 0;
  TimeNs total_ns = 0;  // ANALYZE only; broker-clock elapsed
  std::uint64_t total_rows = 0;

  // Stable human/machine-readable rendering, one line per entry — the shell
  // shows this verbatim and tests match against it.
  std::string ToText() const;
  std::vector<std::string> ToLines() const;
};

}  // namespace apollo::aqe
