// AQE executor: resolves a parsed query into parallel per-vertex stream
// accesses (§3.1: "converts a client query into multiple Information
// access calls which are served by the Query Executor of that Vertex").
//
// Each UNION branch targets one topic and is executed as an independent
// task on a thread pool — the embarrassingly parallel resolution the paper
// credits for its query-complexity scaling (Figure 12(b)). Rows come from
// the in-memory stream window; WHERE clauses whose timestamp range reaches
// below the window fall back to the vertex's Archiver.
//
// Hot path: middleware re-issues identical query strings on every placement
// decision, so Execute() caches parsed plans (with per-branch TopicHandles
// resolved at plan time) keyed by query text, and predicate-free aggregate
// selects answer from the stream's O(1) rolling-aggregate index instead of
// scanning the window.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "aqe/ast.h"
#include "aqe/parser.h"
#include "aqe/profile.h"
#include "common/expected.h"
#include "concurrent/thread_pool.h"
#include "obs/metrics.h"
#include "pubsub/broker.h"

namespace apollo::aqe {

// Column label for a select item, e.g. "MAX(timestamp)" or "metric".
std::string SelectItemLabel(const SelectItem& item);

// Evaluates one select item against a stream's O(1) rolling-aggregate
// index snapshot (std::nullopt = empty window). This is the cell the
// executor's "index" strategy emits; the continuous-query engine reuses it
// to maintain materialized rows on publish without re-executing the query.
double IndexAggregateCell(const SelectItem& item,
                          const std::optional<StreamAggregates>& agg);

struct ResultRow {
  std::string source;  // topic the row came from
  std::vector<double> values;
  // Graceful-degradation surface: `degraded` is set when the row's stream
  // is serving last-known-good / predicted values because its vertex
  // crashed or stalled (cleared by the first measured publish after a
  // supervisor restart). `staleness_ns` is the age of the stream's newest
  // entry at query time, so clients can judge the answer either way.
  bool degraded = false;
  TimeNs staleness_ns = 0;
};

struct ResultSet {
  std::vector<std::string> columns;  // labels of the first SELECT's items
  std::vector<ResultRow> rows;
  // Any row degraded -> the whole answer is flagged; max_staleness_ns is
  // the worst staleness across contributing streams.
  bool degraded = false;
  TimeNs max_staleness_ns = 0;

  std::size_t NumRows() const { return rows.size(); }
};

struct ExecutorOptions {
  // Perspective node for network-latency charging on remote topic access.
  NodeId client_node = kLocalNode;
  // Parsed plans cached by query text; the cache resets when it fills.
  std::size_t plan_cache_capacity = 1024;
};

class Executor {
 public:
  // `pool` may be null: queries then resolve sequentially on the calling
  // thread (useful under a SimClock where worker threads would deadlock).
  Executor(Broker& broker, ThreadPool* pool,
           ExecutorOptions options = {});

  // Parses (or fetches the cached plan) and executes. A query starting
  // with EXPLAIN [ANALYZE] is routed through Explain() and its profile is
  // rendered as a one-column ("plan") result set, one line per row — so
  // every surface that can run a query can also profile one.
  Expected<ResultSet> Execute(const std::string& query_text);

  // Executes a pre-parsed query (no plan caching).
  Expected<ResultSet> ExecuteQuery(const Query& query);

  // Query profiler. `query_text` is the bare SELECT (no EXPLAIN prefix).
  // analyze=false resolves the plan and reports the chosen strategy per
  // branch without executing; analyze=true executes and fills per-vertex
  // row counts, degradation, staleness, and broker-clock timings.
  Expected<QueryProfile> Explain(const std::string& query_text, bool analyze);

  // Strips a leading EXPLAIN / EXPLAIN ANALYZE (case-insensitive).
  // Returns true when a prefix was present; `rest` is the bare query.
  static bool StripExplainPrefix(std::string_view text, std::string_view& rest,
                                 bool& analyze);

  // Cached plans currently held (observability/tests).
  std::size_t PlanCacheSize() const;

 private:
  // A parsed query plus one broker handle per UNION branch, resolved at
  // plan time. `broker_version` detects topic churn; a handle for a topic
  // that did not exist at plan time is invalid and re-resolves on use.
  struct Plan {
    Query query;
    std::vector<TopicHandle> handles;  // parallel to query.selects
    std::uint64_t broker_version = 0;
  };

  // Cache lookup + parse-on-miss, shared by Execute and Explain.
  Expected<std::shared_ptr<const Plan>> ResolvePlan(
      const std::string& query_text, bool* cache_hit);
  Expected<ResultSet> ExecutePlan(const Plan& plan,
                                  QueryProfile* profile = nullptr);
  Expected<std::vector<ResultRow>> ExecuteSelect(
      const Select& select, TopicHandle handle,
      VertexProfile* profile = nullptr) const;

  void ResolveHandles(Plan& plan) const;

  Broker& broker_;
  ThreadPool* pool_;
  ExecutorOptions options_;

  // Registry handles, resolved once at construction (hot-path bumps are
  // single relaxed atomics).
  obs::Counter queries_;
  obs::Counter plan_cache_hits_;
  obs::Counter plan_cache_misses_;
  obs::Histogram query_latency_;

  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, std::shared_ptr<const Plan>> plan_cache_;
};

}  // namespace apollo::aqe
