// AQE executor: resolves a parsed query into parallel per-vertex stream
// accesses (§3.1: "converts a client query into multiple Information
// access calls which are served by the Query Executor of that Vertex").
//
// Each UNION branch targets one topic and is executed as an independent
// task on a thread pool — the embarrassingly parallel resolution the paper
// credits for its query-complexity scaling (Figure 12(b)). Rows come from
// the in-memory stream window; WHERE clauses whose timestamp range reaches
// below the window fall back to the vertex's Archiver.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "aqe/ast.h"
#include "aqe/parser.h"
#include "common/expected.h"
#include "concurrent/thread_pool.h"
#include "pubsub/broker.h"

namespace apollo::aqe {

struct ResultRow {
  std::string source;  // topic the row came from
  std::vector<double> values;
};

struct ResultSet {
  std::vector<std::string> columns;  // labels of the first SELECT's items
  std::vector<ResultRow> rows;

  std::size_t NumRows() const { return rows.size(); }
};

struct ExecutorOptions {
  // Perspective node for network-latency charging on remote topic access.
  NodeId client_node = kLocalNode;
};

class Executor {
 public:
  // `pool` may be null: queries then resolve sequentially on the calling
  // thread (useful under a SimClock where worker threads would deadlock).
  Executor(Broker& broker, ThreadPool* pool,
           ExecutorOptions options = {});

  // Parses and executes.
  Expected<ResultSet> Execute(const std::string& query_text);

  // Executes a pre-parsed query.
  Expected<ResultSet> ExecuteQuery(const Query& query);

 private:
  Expected<std::vector<ResultRow>> ExecuteSelect(const Select& select) const;

  Broker& broker_;
  ThreadPool* pool_;
  ExecutorOptions options_;
};

}  // namespace apollo::aqe
