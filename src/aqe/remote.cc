#include "aqe/remote.h"

#include <algorithm>

namespace apollo::aqe {

Query FilterQuery(const Query& query,
                  const std::function<bool(const std::string&)>& serves,
                  std::vector<std::string>* served) {
  Query kept;
  for (const Select& select : query.selects) {
    if (!serves(select.table)) continue;
    kept.selects.push_back(select);
    if (served != nullptr) served->push_back(select.table);
  }
  return kept;
}

Status MergeResult(ResultSet& merged, const ResultSet& part) {
  if (part.columns.empty() && part.rows.empty()) return Status::Ok();
  if (merged.columns.empty()) {
    merged.columns = part.columns;
  } else if (!part.columns.empty() && merged.columns != part.columns) {
    return Status(ErrorCode::kInternal,
                  "partial results disagree on column set");
  }
  merged.rows.insert(merged.rows.end(), part.rows.begin(), part.rows.end());
  merged.degraded = merged.degraded || part.degraded;
  merged.max_staleness_ns =
      std::max(merged.max_staleness_ns, part.max_staleness_ns);
  return Status::Ok();
}

void MarkDegraded(ResultSet& result, TimeNs staleness_ns) {
  result.degraded = true;
  result.max_staleness_ns = std::max(result.max_staleness_ns, staleness_ns);
  for (ResultRow& row : result.rows) {
    row.degraded = true;
    row.staleness_ns = std::max(row.staleness_ns, staleness_ns);
  }
}

}  // namespace apollo::aqe
