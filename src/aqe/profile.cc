#include "aqe/profile.h"

#include <sstream>

namespace apollo::aqe {

std::vector<std::string> QueryProfile::ToLines() const {
  std::vector<std::string> lines;
  lines.push_back((analyzed ? std::string("EXPLAIN ANALYZE ")
                            : std::string("EXPLAIN ")) +
                  query_text);
  {
    std::ostringstream os;
    os << "plan: " << (plan_cache_hit ? "cache hit" : "cache miss")
       << "; branches=" << vertices.size()
       << "; dispatch=" << (parallel ? "parallel" : "sequential");
    lines.push_back(os.str());
  }
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexProfile& v = vertices[i];
    std::ostringstream os;
    os << "vertex[" << i << "] topic=" << v.topic
       << " strategy=" << (v.strategy.empty() ? "?" : v.strategy)
       << " resolved=" << (v.resolved ? "yes" : "no");
    if (analyzed) {
      os << " rows_scanned=" << v.rows_scanned
         << " rows_matched=" << v.rows_matched
         << " rows_returned=" << v.rows_returned;
      if (v.archive_rows > 0) os << " archive_rows=" << v.archive_rows;
      if (v.cold_rows > 0) os << " cold_rows=" << v.cold_rows;
      if (v.cold_blocks_scanned > 0 || v.cold_blocks_pruned > 0) {
        os << " cold_blocks_scanned=" << v.cold_blocks_scanned
           << " cold_blocks_pruned=" << v.cold_blocks_pruned;
      }
      os << " degraded=" << (v.degraded ? "yes" : "no")
         << " staleness_ns=" << v.staleness_ns << " time_ns=" << v.exec_ns;
    }
    lines.push_back(os.str());
  }
  if (analyzed) {
    std::ostringstream os;
    os << "total: rows=" << total_rows
       << " degraded=" << (degraded ? "yes" : "no")
       << " max_staleness_ns=" << max_staleness_ns
       << " time_ns=" << total_ns;
    lines.push_back(os.str());
  }
  return lines;
}

std::string QueryProfile::ToText() const {
  std::string out;
  for (const std::string& line : ToLines()) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace apollo::aqe
