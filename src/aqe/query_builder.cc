#include "aqe/query_builder.h"

#include <cstdio>

namespace apollo::aqe {

Query LatestValueQuery(const std::vector<std::string>& tables) {
  QueryBuilder builder;
  bool first = true;
  for (const std::string& table : tables) {
    if (!first) builder.Union();
    first = false;
    builder.Select(Aggregate::kMax, Column::kTimestamp)
        .Select(Column::kMetric)
        .From(table);
  }
  return builder.Build();
}

namespace {

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

std::string NumberText(double value) {
  // Integral values (timestamps, flags) print without a fraction so the
  // round-trip through the parser is exact.
  if (value == static_cast<double>(static_cast<long long>(value))) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void AppendSelect(std::string& out, const Select& select) {
  out += "SELECT ";
  for (std::size_t i = 0; i < select.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = select.items[i];
    if (item.aggregate == Aggregate::kNone) {
      out += ColumnName(item.column);
    } else {
      out += AggregateName(item.aggregate);
      out += "(";
      out += ColumnName(item.column);
      out += ")";
    }
  }
  out += " FROM ";
  out += select.table;
  if (!select.where.empty()) {
    out += " WHERE ";
    for (std::size_t i = 0; i < select.where.size(); ++i) {
      if (i > 0) out += " AND ";
      const Condition& cond = select.where[i];
      out += ColumnName(cond.column);
      out += " ";
      out += OpText(cond.op);
      out += " ";
      out += NumberText(cond.value);
    }
  }
  if (select.order_by.has_value()) {
    out += " ORDER BY ";
    out += ColumnName(select.order_by->column);
    out += select.order_by->descending ? " DESC" : " ASC";
  }
  if (select.limit.has_value()) {
    out += " LIMIT " + std::to_string(*select.limit);
  }
}

}  // namespace

std::string ToString(const Query& query) {
  std::string out;
  if (query.continuous) out += "SUBSCRIBE ";
  for (std::size_t i = 0; i < query.selects.size(); ++i) {
    if (i > 0) out += " UNION ";
    AppendSelect(out, query.selects[i]);
  }
  if (query.continuous && query.every_ns > 0) {
    out += " EVERY " + std::to_string(query.every_ns) + " ns";
  }
  return out;
}

}  // namespace apollo::aqe
