// Remote (scatter-gather) query helpers.
//
// A fabric query fans one UNION query out to every daemon: each daemon
// executes only the branches whose topics it serves (FilterQuery), and the
// client-side RemoteQueryEngine merges the partial ResultSets back into one
// answer (MergeResult), rolling up the degraded/staleness flags the same
// way Executor does across branches of a local query.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "aqe/ast.h"
#include "aqe/executor.h"
#include "common/expected.h"

namespace apollo::aqe {

// Branches of `query` whose table satisfies `serves`. Served table names
// are appended to `served` (when non-null) in branch order.
Query FilterQuery(const Query& query,
                  const std::function<bool(const std::string&)>& serves,
                  std::vector<std::string>* served = nullptr);

// Appends `part`'s rows to `merged` and rolls up the degraded flag and
// worst-case staleness. The first non-empty part establishes the column
// set; a later part with different columns is rejected (the daemons
// disagree on the query shape).
Status MergeResult(ResultSet& merged, const ResultSet& part);

// Marks every row (and the set) degraded with staleness at least
// `staleness_ns` — applied to last-known-good answers served from the
// client-side cache when a node misses its deadline.
void MarkDegraded(ResultSet& result, TimeNs staleness_ns);

}  // namespace apollo::aqe
