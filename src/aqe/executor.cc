#include "aqe/executor.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <future>
#include <limits>
#include <numeric>

#include "obs/trace.h"

namespace apollo::aqe {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

double CellOf(Column column, const StreamEntry<Sample>& entry) {
  switch (column) {
    case Column::kTimestamp:
      return static_cast<double>(entry.value.timestamp);
    case Column::kMetric:
      return entry.value.value;
    case Column::kPredicted:
      return entry.value.provenance == Provenance::kPredicted ? 1.0 : 0.0;
    case Column::kStar:
      return 0.0;
  }
  return 0.0;
}

bool Matches(const Condition& cond, const StreamEntry<Sample>& entry) {
  const double lhs = CellOf(cond.column, entry);
  switch (cond.op) {
    case CompareOp::kLt:
      return lhs < cond.value;
    case CompareOp::kLe:
      return lhs <= cond.value;
    case CompareOp::kGt:
      return lhs > cond.value;
    case CompareOp::kGe:
      return lhs >= cond.value;
    case CompareOp::kEq:
      return lhs == cond.value;
    case CompareOp::kNe:
      return lhs != cond.value;
  }
  return false;
}

bool MatchesAll(const std::vector<Condition>& where,
                const StreamEntry<Sample>& entry) {
  for (const Condition& cond : where) {
    if (!Matches(cond, entry)) return false;
  }
  return true;
}

// Sum / min / max of a column over the window, read off the rolling index.
double IndexSum(Column column, const StreamAggregates& agg) {
  switch (column) {
    case Column::kTimestamp:
      return agg.sum_timestamp;
    case Column::kMetric:
      return agg.sum_value;
    case Column::kPredicted:
      return static_cast<double>(agg.predicted);
    case Column::kStar:
      return 0.0;
  }
  return 0.0;
}

double IndexMin(Column column, const StreamAggregates& agg) {
  switch (column) {
    case Column::kTimestamp:
      return static_cast<double>(agg.min_timestamp);
    case Column::kMetric:
      return agg.min_value;
    case Column::kPredicted:
      return agg.predicted == agg.count ? 1.0 : 0.0;
    case Column::kStar:
      return 0.0;
  }
  return 0.0;
}

double IndexMax(Column column, const StreamAggregates& agg) {
  switch (column) {
    case Column::kTimestamp:
      return static_cast<double>(agg.max_timestamp);
    case Column::kMetric:
      return agg.max_value;
    case Column::kPredicted:
      return agg.predicted > 0 ? 1.0 : 0.0;
    case Column::kStar:
      return 0.0;
  }
  return 0.0;
}

}  // namespace

std::string SelectItemLabel(const SelectItem& item) {
  if (item.aggregate == Aggregate::kNone) return ColumnName(item.column);
  return std::string(AggregateName(item.aggregate)) + "(" +
         ColumnName(item.column) + ")";
}

double IndexAggregateCell(const SelectItem& item,
                          const std::optional<StreamAggregates>& agg) {
  if (!agg.has_value()) {
    return item.aggregate == Aggregate::kCount ? 0.0 : kNan;
  }
  switch (item.aggregate) {
    case Aggregate::kNone:
    case Aggregate::kLast:
      return CellOf(item.column, agg->latest);
    case Aggregate::kCount:
      return static_cast<double>(agg->count);
    case Aggregate::kSum:
      return IndexSum(item.column, *agg);
    case Aggregate::kAvg:
      return IndexSum(item.column, *agg) / static_cast<double>(agg->count);
    case Aggregate::kMin:
      return IndexMin(item.column, *agg);
    case Aggregate::kMax:
      return IndexMax(item.column, *agg);
  }
  return kNan;
}

Executor::Executor(Broker& broker, ThreadPool* pool, ExecutorOptions options)
    : broker_(broker),
      pool_(pool),
      options_(options),
      queries_(obs::MetricsRegistry::Global().GetCounter(
          "apollo_aqe_queries_total", "AQE queries executed")),
      plan_cache_hits_(obs::MetricsRegistry::Global().GetCounter(
          "apollo_aqe_plan_cache_hits_total",
          "Queries answered from a cached plan")),
      plan_cache_misses_(obs::MetricsRegistry::Global().GetCounter(
          "apollo_aqe_plan_cache_misses_total",
          "Queries that parsed and planned from scratch")),
      query_latency_(obs::MetricsRegistry::Global().GetHistogram(
          "apollo_aqe_query_duration_ns",
          "AQE query end-to-end latency (broker clock)")) {}

bool Executor::StripExplainPrefix(std::string_view text,
                                  std::string_view& rest, bool& analyze) {
  auto skip_ws = [](std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
      s.remove_prefix(1);
    }
    return s;
  };
  // Case-insensitive word match followed by whitespace or end.
  auto eat_word = [&](std::string_view s, std::string_view word,
                      std::string_view& after) {
    if (s.size() < word.size()) return false;
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(s[i])) != word[i]) {
        return false;
      }
    }
    if (s.size() > word.size() &&
        !std::isspace(static_cast<unsigned char>(s[word.size()]))) {
      return false;
    }
    after = skip_ws(s.substr(word.size()));
    return true;
  };
  std::string_view s = skip_ws(text);
  std::string_view after;
  if (!eat_word(s, "EXPLAIN", after)) return false;
  analyze = eat_word(after, "ANALYZE", after);
  rest = after;
  return true;
}

Expected<std::shared_ptr<const Executor::Plan>> Executor::ResolvePlan(
    const std::string& query_text, bool* cache_hit) {
  std::shared_ptr<const Plan> plan;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = plan_cache_.find(query_text);
    if (it != plan_cache_.end()) plan = it->second;
  }
  if (cache_hit != nullptr) *cache_hit = plan != nullptr;
  if (plan == nullptr) {
    plan_cache_misses_.Inc();
    auto parsed = Parse(query_text);
    if (!parsed.ok()) return parsed.error();
    auto fresh = std::make_shared<Plan>();
    fresh->query = std::move(*parsed);
    ResolveHandles(*fresh);
    std::lock_guard<std::mutex> lock(cache_mu_);
    if (plan_cache_.size() >= options_.plan_cache_capacity) {
      plan_cache_.clear();
    }
    plan_cache_[query_text] = fresh;
    plan = std::move(fresh);
  } else if (plan->broker_version != broker_.RegistryVersion()) {
    plan_cache_hits_.Inc();
    // Topic churn since plan time: re-resolve the handles once, keep the
    // parse.
    auto fresh = std::make_shared<Plan>(*plan);
    ResolveHandles(*fresh);
    std::lock_guard<std::mutex> lock(cache_mu_);
    plan_cache_[query_text] = fresh;
    plan = std::move(fresh);
  } else {
    plan_cache_hits_.Inc();
  }
  return plan;
}

Expected<ResultSet> Executor::Execute(const std::string& query_text) {
  // EXPLAIN routing: profile instead of answering, rendered as rows so the
  // shell and ApolloService::Query callers need no new entry point.
  std::string_view bare;
  bool analyze = false;
  if (StripExplainPrefix(query_text, bare, analyze)) {
    auto profile = Explain(std::string(bare), analyze);
    if (!profile.ok()) return profile.error();
    ResultSet result;
    result.columns = {"plan"};
    for (std::string& line : profile->ToLines()) {
      ResultRow row;
      row.source = std::move(line);
      row.degraded = profile->degraded;
      row.staleness_ns = profile->max_staleness_ns;
      result.rows.push_back(std::move(row));
    }
    result.degraded = profile->degraded;
    result.max_staleness_ns = profile->max_staleness_ns;
    return result;
  }

  TRACE_SPAN("aqe.execute", query_text);
  queries_.Inc();
  auto plan = ResolvePlan(query_text, nullptr);
  if (!plan.ok()) return plan.error();
  const TimeNs start = broker_.clock().Now();
  auto result = ExecutePlan(**plan);
  query_latency_.Record(broker_.clock().Now() - start);
  return result;
}

Expected<QueryProfile> Executor::Explain(const std::string& query_text,
                                         bool analyze) {
  TRACE_SPAN("aqe.explain", query_text);
  QueryProfile profile;
  profile.query_text = query_text;
  profile.analyzed = analyze;
  auto plan = ResolvePlan(query_text, &profile.plan_cache_hit);
  if (!plan.ok()) return plan.error();

  if (analyze) {
    queries_.Inc();
    const TimeNs start = broker_.clock().Now();
    auto result = ExecutePlan(**plan, &profile);
    const TimeNs elapsed = broker_.clock().Now() - start;
    query_latency_.Record(elapsed);
    if (!result.ok()) return result.error();
    profile.total_ns = elapsed;
    profile.total_rows = result->NumRows();
    profile.degraded = result->degraded;
    profile.max_staleness_ns = result->max_staleness_ns;
    return profile;
  }

  // Plan-only: report each branch's topic, whether its handle resolved,
  // and the statically-knowable strategy (runtime state — archive contents,
  // index trust — can still demote an "index" plan to a scan at exec time).
  const Plan& resolved = **plan;
  profile.parallel =
      pool_ != nullptr && resolved.query.selects.size() > 1;
  for (std::size_t i = 0; i < resolved.query.selects.size(); ++i) {
    const Select& select = resolved.query.selects[i];
    VertexProfile vp;
    vp.topic = select.table;
    vp.resolved = resolved.handles[i].valid();
    const bool has_aggregate =
        std::any_of(select.items.begin(), select.items.end(),
                    [](const SelectItem& item) {
                      return item.aggregate != Aggregate::kNone;
                    });
    if (select.where.empty() && !select.items.empty() && has_aggregate) {
      const bool latest_only = std::all_of(
          select.items.begin(), select.items.end(),
          [](const SelectItem& item) {
            return item.aggregate == Aggregate::kLast ||
                   item.aggregate == Aggregate::kNone ||
                   (item.aggregate == Aggregate::kMax &&
                    item.column == Column::kTimestamp);
          });
      vp.strategy = latest_only ? "latest" : "index";
    } else {
      vp.strategy = "scan";
    }
    profile.vertices.push_back(std::move(vp));
  }
  return profile;
}

Expected<ResultSet> Executor::ExecuteQuery(const Query& query) {
  Plan plan;
  plan.query = query;
  ResolveHandles(plan);
  return ExecutePlan(plan);
}

std::size_t Executor::PlanCacheSize() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return plan_cache_.size();
}

void Executor::ResolveHandles(Plan& plan) const {
  plan.broker_version = broker_.RegistryVersion();
  plan.handles.clear();
  plan.handles.reserve(plan.query.selects.size());
  for (const Select& select : plan.query.selects) {
    auto handle = broker_.Resolve(select.table);
    // Missing topics leave an invalid handle; ExecuteSelect retries the
    // lookup (and errors, as before) so late-created topics still resolve.
    plan.handles.push_back(handle.ok() ? *std::move(handle) : TopicHandle());
  }
}

Expected<ResultSet> Executor::ExecutePlan(const Plan& plan,
                                          QueryProfile* profile) {
  const Query& query = plan.query;
  if (query.selects.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty query");
  }
  ResultSet result;
  for (const SelectItem& item : query.selects.front().items) {
    result.columns.push_back(SelectItemLabel(item));
  }
  if (profile != nullptr) {
    profile->vertices.assign(query.selects.size(), VertexProfile{});
  }

  if (pool_ != nullptr && query.selects.size() > 1) {
    if (profile != nullptr) profile->parallel = true;
    std::vector<std::future<Expected<std::vector<ResultRow>>>> futures;
    futures.reserve(query.selects.size());
    for (std::size_t i = 0; i < query.selects.size(); ++i) {
      const Select& select = query.selects[i];
      VertexProfile* vp =
          profile != nullptr ? &profile->vertices[i] : nullptr;
      futures.push_back(pool_->Submit(
          [this, &select, vp, handle = plan.handles[i]]() mutable {
            return ExecuteSelect(select, std::move(handle), vp);
          }));
    }
    for (auto& future : futures) {
      auto rows = future.get();
      if (!rows.ok()) return rows.error();
      for (auto& row : *rows) {
        result.degraded |= row.degraded;
        result.max_staleness_ns =
            std::max(result.max_staleness_ns, row.staleness_ns);
        result.rows.push_back(std::move(row));
      }
    }
    return result;
  }

  for (std::size_t i = 0; i < query.selects.size(); ++i) {
    VertexProfile* vp = profile != nullptr ? &profile->vertices[i] : nullptr;
    auto rows = ExecuteSelect(query.selects[i], plan.handles[i], vp);
    if (!rows.ok()) return rows.error();
    for (auto& row : *rows) {
      result.degraded |= row.degraded;
      result.max_staleness_ns =
          std::max(result.max_staleness_ns, row.staleness_ns);
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

Expected<std::vector<ResultRow>> Executor::ExecuteSelect(
    const Select& select, TopicHandle handle, VertexProfile* vp) const {
  TRACE_SPAN("aqe.select", select.table);
  const TimeNs exec_start = vp != nullptr ? broker_.clock().Now() : 0;
  if (vp != nullptr) vp->topic = select.table;
  if (!handle.valid()) {
    auto resolved = broker_.Resolve(select.table);
    if (!resolved.ok()) return resolved.error();
    handle = *std::move(resolved);
  }
  if (vp != nullptr) vp->resolved = true;
  TelemetryStream* stream = handle.stream();

  // Charge the client->vertex network hop once per table access — a pure
  // latency charge, no stream locks or registry lookups.
  if (options_.client_node != handle.home_node()) {
    (void)broker_.ChargeHop(handle, options_.client_node);
  }

  // Degradation surface, computed once per table access and stamped on
  // every row this branch returns: a degraded stream keeps answering from
  // last-known-good / predicted values, and staleness lets clients judge
  // how old those values are.
  const bool is_degraded = stream->degraded();
  TimeNs staleness_ns = 0;
  if (auto newest = stream->Latest(); newest.has_value()) {
    staleness_ns =
        std::max<TimeNs>(0, broker_.clock().Now() - newest->value.timestamp);
  }
  auto stamped = [&](std::vector<ResultRow> rows) {
    for (ResultRow& row : rows) {
      row.degraded = is_degraded;
      row.staleness_ns = staleness_ns;
    }
    if (vp != nullptr) {
      vp->degraded = is_degraded;
      vp->staleness_ns = staleness_ns;
      vp->rows_returned = rows.size();
      vp->exec_ns = broker_.clock().Now() - exec_start;
    }
    return rows;
  };

  const bool has_aggregate =
      std::any_of(select.items.begin(), select.items.end(),
                  [](const SelectItem& item) {
                    return item.aggregate != Aggregate::kNone;
                  });

  // Fast path for the latest-value idiom (SELECT MAX(Timestamp), metric
  // FROM t with no predicates): the answer is the stream's newest entry —
  // no window scan, no archive. This is the query middleware issues per
  // placement decision, so it gets O(1) treatment.
  if (select.where.empty() && !select.items.empty() && has_aggregate) {
    const bool latest_only = std::all_of(
        select.items.begin(), select.items.end(),
        [](const SelectItem& item) {
          return item.aggregate == Aggregate::kLast ||
                 item.aggregate == Aggregate::kNone ||
                 (item.aggregate == Aggregate::kMax &&
                  item.column == Column::kTimestamp);
        });
    if (latest_only) {
      auto latest = stream->Latest();
      ResultRow row;
      row.source = select.table;
      for (const SelectItem& item : select.items) {
        row.values.push_back(latest.has_value() ? CellOf(item.column, *latest)
                                                : kNan);
      }
      if (vp != nullptr) {
        vp->strategy = "latest";
        vp->rows_scanned = latest.has_value() ? 1 : 0;
        vp->rows_matched = vp->rows_scanned;
      }
      return stamped(std::vector<ResultRow>{std::move(row)});
    }

    // O(1) rolling-aggregate path: COUNT/SUM/AVG/MIN/MAX with no WHERE
    // answer from the stream's aggregate index instead of a window scan —
    // unless an archive holds evicted rows, which the index does not cover
    // (the full-window scan below merges them, as before).
    Archiver<Sample>* archiver = stream->archiver();
    bool archive_has_rows = archiver != nullptr;
    if (archive_has_rows) {
      stream->FlushEvictions();
      archive_has_rows = archiver->Count() > 0;
      // Rows compacted into the cold tier left the WAL; the index does
      // not cover them either, so they force the merging scan too.
      if (!archive_has_rows) {
        ColdReaderBase* cold = archiver->cold_reader();
        archive_has_rows = cold != nullptr && cold->ColdRowCount() > 0;
      }
    }
    if (!archive_has_rows) {
      auto agg = stream->Aggregates();
      const bool needs_ts_stats = std::any_of(
          select.items.begin(), select.items.end(),
          [](const SelectItem& item) {
            return item.column == Column::kTimestamp &&
                   (item.aggregate == Aggregate::kSum ||
                    item.aggregate == Aggregate::kAvg ||
                    item.aggregate == Aggregate::kMin ||
                    item.aggregate == Aggregate::kMax);
          });
      if (!agg.has_value() || agg->timestamps_trusted || !needs_ts_stats) {
        ResultRow row;
        row.source = select.table;
        for (const SelectItem& item : select.items) {
          row.values.push_back(IndexAggregateCell(item, agg));
        }
        if (vp != nullptr) {
          vp->strategy = "index";
          vp->rows_matched = agg.has_value() ? agg->count : 0;
        }
        return stamped(std::vector<ResultRow>{std::move(row)});
      }
    }
  }

  // Determine the candidate window: default = full in-memory window;
  // timestamp predicates narrow it (and may reach into the archive).
  TimeNs from_ts = std::numeric_limits<TimeNs>::min();
  TimeNs to_ts = std::numeric_limits<TimeNs>::max();
  for (const Condition& cond : select.where) {
    if (cond.column != Column::kTimestamp) continue;
    const TimeNs v = static_cast<TimeNs>(cond.value);
    switch (cond.op) {
      case CompareOp::kGt:
      case CompareOp::kGe:
        from_ts = std::max(from_ts, v);
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        to_ts = std::min(to_ts, v);
        break;
      case CompareOp::kEq:
        from_ts = std::max(from_ts, v);
        to_ts = std::min(to_ts, v);
        break;
      case CompareOp::kNe:
        break;
    }
  }

  // Archive fallback: if rows have been evicted and the query's range can
  // reach below the in-memory window, snapshot the window and merge the
  // older archived rows in front of it. Otherwise iterate the window in
  // place — no snapshot, no allocation.
  Archiver<Sample>* archiver = stream->archiver();
  ColdReaderBase* cold =
      archiver != nullptr ? archiver->cold_reader() : nullptr;
  bool archive_has_rows = archiver != nullptr;
  if (archive_has_rows) {
    stream->FlushEvictions();
    archive_has_rows = archiver->Count() > 0;
  }
  const bool cold_has_rows = cold != nullptr && cold->ColdRowCount() > 0;

  // Reused across calls on this thread: query execution allocates nothing
  // on the steady-state (no-archive) path.
  thread_local std::vector<StreamEntry<Sample>> scratch;
  std::vector<StreamEntry<Sample>> merged;
  bool use_merged = false;
  std::size_t archived_count = 0;
  std::size_t cold_count = 0;
  ColdScanStats cold_stats;
  if (archive_has_rows || cold_has_rows) {
    stream->RangeByTime(from_ts, to_ts, scratch);
    // Archive rows strictly older than the in-memory ones; when the window
    // had no match at all, the whole range comes from the archive.
    const TimeNs archive_to =
        scratch.empty() ? to_ts : scratch.front().timestamp - 1;
    std::vector<StreamEntry<Sample>> wal_rows;
    if (archive_has_rows && from_ts <= archive_to) {
      auto archived = archiver->ReadRange(from_ts, archive_to);
      if (archived.ok()) {
        wal_rows.reserve(archived->size());
        for (const auto& rec : *archived) {
          wal_rows.push_back(
              StreamEntry<Sample>{rec.id, rec.timestamp, rec.payload});
        }
        archived_count = wal_rows.size();
      } else {
        // Unreadable archive: answer from the in-memory window alone, but
        // never silently — the counter makes the degraded read visible.
        GlobalTelemetry().archive_read_errors.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    // Cold rows are strictly older than everything still in the WAL
    // (compaction drains oldest segments first), so capping the cold
    // range below the first WAL row keeps COUNT exact even when a
    // concurrent compaction moves rows between the two reads: any row
    // both reads saw is >= the first WAL row and gets excluded here.
    const TimeNs cold_to =
        wal_rows.empty() ? archive_to : wal_rows.front().timestamp - 1;
    if (cold_has_rows && from_ts <= cold_to) {
      // ScanRange degrades internally (quarantine/skip + stats), so the
      // status is always Ok; merged collects the cold prefix in place.
      (void)cold->ScanRange(
          from_ts, cold_to,
          [&merged](std::uint64_t id, TimeNs timestamp,
                    const Sample& sample) {
            merged.push_back(StreamEntry<Sample>{id, timestamp, sample});
          },
          &cold_stats);
      cold_count = merged.size();
    }
    merged.reserve(merged.size() + wal_rows.size() + scratch.size());
    merged.insert(merged.end(), wal_rows.begin(), wal_rows.end());
    merged.insert(merged.end(), scratch.begin(), scratch.end());
    use_merged = true;
  }

  // Single-pass scan: predicates filter inline (no intermediate pointer
  // vector); the no-archive path iterates the ring in place.
  auto scan = [&](auto&& visit) {
    if (use_merged) {
      for (const auto& entry : merged) {
        if (!visit(entry)) break;
      }
    } else {
      stream->ForEachInRange(from_ts, to_ts, visit);
    }
  };
  if (vp != nullptr) {
    vp->strategy = "scan";
    if (archived_count > 0) vp->strategy += "+archive";
    if (cold_count > 0) vp->strategy += "+cold";
    vp->archive_rows = archived_count;
    vp->cold_rows = cold_count;
    vp->cold_blocks_scanned = cold_stats.blocks_scanned;
    vp->cold_blocks_pruned = cold_stats.blocks_pruned;
  }

  if (has_aggregate) {
    // One row; bare columns in an aggregate select resolve against the
    // latest matching entry (the paper's MAX(Timestamp), metric idiom).
    struct ItemAcc {
      double sum = 0.0;
      double min = std::numeric_limits<double>::infinity();
      double max = -std::numeric_limits<double>::infinity();
    };
    std::vector<ItemAcc> accs(select.items.size());
    std::size_t matched = 0;
    StreamEntry<Sample> latest{};
    bool has_latest = false;

    scan([&](const StreamEntry<Sample>& entry) {
      if (vp != nullptr) ++vp->rows_scanned;
      if (!MatchesAll(select.where, entry)) return true;
      ++matched;
      if (!has_latest || entry.value.timestamp >= latest.value.timestamp) {
        latest = entry;
        has_latest = true;
      }
      for (std::size_t i = 0; i < select.items.size(); ++i) {
        const SelectItem& item = select.items[i];
        if (item.aggregate == Aggregate::kNone ||
            item.aggregate == Aggregate::kLast ||
            item.aggregate == Aggregate::kCount) {
          continue;
        }
        const double v = CellOf(item.column, entry);
        ItemAcc& acc = accs[i];
        acc.sum += v;
        acc.min = std::min(acc.min, v);
        acc.max = std::max(acc.max, v);
      }
      return true;
    });
    if (vp != nullptr) vp->rows_matched = matched;

    ResultRow row;
    row.source = select.table;
    for (std::size_t i = 0; i < select.items.size(); ++i) {
      const SelectItem& item = select.items[i];
      double cell = kNan;
      switch (item.aggregate) {
        case Aggregate::kNone:
        case Aggregate::kLast:
          if (has_latest) cell = CellOf(item.column, latest);
          break;
        case Aggregate::kCount:
          cell = static_cast<double>(matched);
          break;
        case Aggregate::kMax:
          if (matched > 0) cell = accs[i].max;
          break;
        case Aggregate::kMin:
          if (matched > 0) cell = accs[i].min;
          break;
        case Aggregate::kSum:
          if (matched > 0) cell = accs[i].sum;
          break;
        case Aggregate::kAvg:
          if (matched > 0) {
            cell = accs[i].sum / static_cast<double>(matched);
          }
          break;
      }
      row.values.push_back(cell);
    }
    return stamped(std::vector<ResultRow>{std::move(row)});
  }

  // Row-per-entry select, built in one pass. Without ORDER BY the scan
  // stops as soon as LIMIT rows have matched.
  const bool ordered = select.order_by.has_value();
  const std::size_t limit = select.limit.has_value()
                                ? static_cast<std::size_t>(*select.limit)
                                : SIZE_MAX;
  std::vector<ResultRow> rows;
  std::vector<double> keys;  // sort keys, parallel to rows (ORDER BY only)

  scan([&](const StreamEntry<Sample>& entry) {
    if (vp != nullptr) ++vp->rows_scanned;
    if (!MatchesAll(select.where, entry)) return true;
    if (vp != nullptr) ++vp->rows_matched;
    if (!ordered && rows.size() >= limit) return false;
    ResultRow row;
    row.source = select.table;
    row.values.reserve(select.items.size());
    for (const SelectItem& item : select.items) {
      row.values.push_back(CellOf(item.column, entry));
    }
    rows.push_back(std::move(row));
    if (ordered) keys.push_back(CellOf(select.order_by->column, entry));
    return true;
  });

  if (ordered) {
    const bool descending = select.order_by->descending;
    std::vector<std::size_t> idx(rows.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                       return descending ? keys[a] > keys[b]
                                         : keys[a] < keys[b];
                     });
    if (idx.size() > limit) idx.resize(limit);
    std::vector<ResultRow> out;
    out.reserve(idx.size());
    for (std::size_t i : idx) out.push_back(std::move(rows[i]));
    rows = std::move(out);
  }
  return stamped(std::move(rows));
}

}  // namespace apollo::aqe
