#include "aqe/executor.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

namespace apollo::aqe {

namespace {

double CellOf(Column column, const StreamEntry<Sample>& entry) {
  switch (column) {
    case Column::kTimestamp:
      return static_cast<double>(entry.value.timestamp);
    case Column::kMetric:
      return entry.value.value;
    case Column::kPredicted:
      return entry.value.provenance == Provenance::kPredicted ? 1.0 : 0.0;
    case Column::kStar:
      return 0.0;
  }
  return 0.0;
}

bool Matches(const Condition& cond, const StreamEntry<Sample>& entry) {
  const double lhs = CellOf(cond.column, entry);
  switch (cond.op) {
    case CompareOp::kLt:
      return lhs < cond.value;
    case CompareOp::kLe:
      return lhs <= cond.value;
    case CompareOp::kGt:
      return lhs > cond.value;
    case CompareOp::kGe:
      return lhs >= cond.value;
    case CompareOp::kEq:
      return lhs == cond.value;
    case CompareOp::kNe:
      return lhs != cond.value;
  }
  return false;
}

std::string LabelOf(const SelectItem& item) {
  if (item.aggregate == Aggregate::kNone) return ColumnName(item.column);
  return std::string(AggregateName(item.aggregate)) + "(" +
         ColumnName(item.column) + ")";
}

}  // namespace

Executor::Executor(Broker& broker, ThreadPool* pool, ExecutorOptions options)
    : broker_(broker), pool_(pool), options_(options) {}

Expected<ResultSet> Executor::Execute(const std::string& query_text) {
  auto query = Parse(query_text);
  if (!query.ok()) return query.error();
  return ExecuteQuery(*query);
}

Expected<ResultSet> Executor::ExecuteQuery(const Query& query) {
  if (query.selects.empty()) {
    return Error(ErrorCode::kInvalidArgument, "empty query");
  }
  ResultSet result;
  for (const SelectItem& item : query.selects.front().items) {
    result.columns.push_back(LabelOf(item));
  }

  if (pool_ != nullptr && query.selects.size() > 1) {
    std::vector<std::future<Expected<std::vector<ResultRow>>>> futures;
    futures.reserve(query.selects.size());
    for (const Select& select : query.selects) {
      futures.push_back(
          pool_->Submit([this, &select] { return ExecuteSelect(select); }));
    }
    for (auto& future : futures) {
      auto rows = future.get();
      if (!rows.ok()) return rows.error();
      for (auto& row : *rows) result.rows.push_back(std::move(row));
    }
    return result;
  }

  for (const Select& select : query.selects) {
    auto rows = ExecuteSelect(select);
    if (!rows.ok()) return rows.error();
    for (auto& row : *rows) result.rows.push_back(std::move(row));
  }
  return result;
}

Expected<std::vector<ResultRow>> Executor::ExecuteSelect(
    const Select& select) const {
  auto topic = broker_.GetTopic(select.table);
  if (!topic.ok()) return topic.error();
  TelemetryStream* stream = *topic;

  // Charge the client->vertex network hop once per table access.
  const NodeId home = broker_.HomeNode(select.table);
  if (options_.client_node != home) {
    // Reuse the broker's latency model via a zero-length fetch.
    std::uint64_t probe_cursor = stream->NextId();
    (void)broker_.Fetch(select.table, options_.client_node, probe_cursor, 0);
  }

  // Fast path for the latest-value idiom (SELECT MAX(Timestamp), metric
  // FROM t with no predicates): the answer is the stream's newest entry —
  // no window scan, no archive. This is the query middleware issues per
  // placement decision, so it gets O(1) treatment.
  if (select.where.empty() && !select.items.empty()) {
    const bool latest_only = std::all_of(
        select.items.begin(), select.items.end(),
        [](const SelectItem& item) {
          return item.aggregate == Aggregate::kLast ||
                 item.aggregate == Aggregate::kNone ||
                 (item.aggregate == Aggregate::kMax &&
                  item.column == Column::kTimestamp);
        });
    const bool has_aggregate_item = std::any_of(
        select.items.begin(), select.items.end(),
        [](const SelectItem& item) {
          return item.aggregate != Aggregate::kNone;
        });
    if (latest_only && has_aggregate_item) {
      auto latest = stream->Latest();
      ResultRow row;
      row.source = select.table;
      for (const SelectItem& item : select.items) {
        row.values.push_back(
            latest.has_value()
                ? CellOf(item.column, *latest)
                : std::numeric_limits<double>::quiet_NaN());
      }
      return std::vector<ResultRow>{std::move(row)};
    }
  }

  // Determine the candidate window: default = full in-memory window;
  // timestamp predicates narrow it (and may reach into the archive).
  TimeNs from_ts = std::numeric_limits<TimeNs>::min();
  TimeNs to_ts = std::numeric_limits<TimeNs>::max();
  for (const Condition& cond : select.where) {
    if (cond.column != Column::kTimestamp) continue;
    const TimeNs v = static_cast<TimeNs>(cond.value);
    switch (cond.op) {
      case CompareOp::kGt:
      case CompareOp::kGe:
        from_ts = std::max(from_ts, v);
        break;
      case CompareOp::kLt:
      case CompareOp::kLe:
        to_ts = std::min(to_ts, v);
        break;
      case CompareOp::kEq:
        from_ts = std::max(from_ts, v);
        to_ts = std::min(to_ts, v);
        break;
      case CompareOp::kNe:
        break;
    }
  }

  std::vector<StreamEntry<Sample>> entries =
      stream->RangeByTime(from_ts, to_ts);

  // Archive fallback: if the query's lower bound precedes the in-memory
  // window, pull older rows from the archiver.
  Archiver<Sample>* archiver = stream->archiver();
  if (archiver != nullptr) {
    // Archive rows strictly older than the in-memory ones; when the window
    // had no match at all, the whole range comes from the archive.
    const TimeNs archive_to =
        entries.empty() ? to_ts : entries.front().timestamp - 1;
    if (from_ts <= archive_to && archiver->Count() > 0) {
      auto archived = archiver->ReadRange(from_ts, archive_to);
      if (archived.ok()) {
        std::vector<StreamEntry<Sample>> merged;
        merged.reserve(archived->size() + entries.size());
        for (const auto& rec : *archived) {
          merged.push_back(
              StreamEntry<Sample>{rec.id, rec.timestamp, rec.payload});
        }
        merged.insert(merged.end(), entries.begin(), entries.end());
        entries = std::move(merged);
      }
    }
  }

  // Apply remaining (non-timestamp-range) predicates.
  std::vector<const StreamEntry<Sample>*> filtered;
  filtered.reserve(entries.size());
  for (const auto& entry : entries) {
    bool keep = true;
    for (const Condition& cond : select.where) {
      if (!Matches(cond, entry)) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(&entry);
  }

  const bool has_aggregate =
      std::any_of(select.items.begin(), select.items.end(),
                  [](const SelectItem& item) {
                    return item.aggregate != Aggregate::kNone;
                  });

  std::vector<ResultRow> rows;

  if (has_aggregate) {
    // One row; bare columns in an aggregate select resolve against the
    // latest matching entry (the paper's MAX(Timestamp), metric idiom).
    const StreamEntry<Sample>* latest = nullptr;
    for (const auto* entry : filtered) {
      if (latest == nullptr || entry->value.timestamp >= latest->value.timestamp) {
        latest = entry;
      }
    }
    ResultRow row;
    row.source = select.table;
    for (const SelectItem& item : select.items) {
      double cell = std::numeric_limits<double>::quiet_NaN();
      switch (item.aggregate) {
        case Aggregate::kNone:
        case Aggregate::kLast:
          if (latest != nullptr) cell = CellOf(item.column, *latest);
          break;
        case Aggregate::kCount:
          cell = static_cast<double>(filtered.size());
          break;
        case Aggregate::kMax: {
          double best = -std::numeric_limits<double>::infinity();
          for (const auto* entry : filtered) {
            best = std::max(best, CellOf(item.column, *entry));
          }
          if (!filtered.empty()) cell = best;
          break;
        }
        case Aggregate::kMin: {
          double best = std::numeric_limits<double>::infinity();
          for (const auto* entry : filtered) {
            best = std::min(best, CellOf(item.column, *entry));
          }
          if (!filtered.empty()) cell = best;
          break;
        }
        case Aggregate::kAvg:
        case Aggregate::kSum: {
          double sum = 0.0;
          for (const auto* entry : filtered) {
            sum += CellOf(item.column, *entry);
          }
          if (!filtered.empty()) {
            cell = item.aggregate == Aggregate::kSum
                       ? sum
                       : sum / static_cast<double>(filtered.size());
          }
          break;
        }
      }
      row.values.push_back(cell);
    }
    rows.push_back(std::move(row));
    return rows;
  }

  // Row-per-entry select.
  std::vector<const StreamEntry<Sample>*> ordered = filtered;
  if (select.order_by.has_value()) {
    const OrderBy order = *select.order_by;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [order](const StreamEntry<Sample>* a,
                             const StreamEntry<Sample>* b) {
                       const double av = CellOf(order.column, *a);
                       const double bv = CellOf(order.column, *b);
                       return order.descending ? av > bv : av < bv;
                     });
  }
  std::size_t limit = ordered.size();
  if (select.limit.has_value()) {
    limit = std::min<std::size_t>(limit, *select.limit);
  }
  rows.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    ResultRow row;
    row.source = select.table;
    for (const SelectItem& item : select.items) {
      row.values.push_back(CellOf(item.column, *ordered[i]));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace apollo::aqe
