#include "delphi/delphi_model.h"

#include <cassert>
#include <chrono>
#include <cstdint>
#include <fstream>

#include "nn/dense.h"

namespace apollo::delphi {

DelphiModel DelphiModel::Train(const DelphiConfig& config) {
  const auto start = std::chrono::steady_clock::now();

  DelphiModel model;
  model.window_ = config.feature_config.window;
  model.features_ = TrainFeatureModels(config.feature_config);

  // Build the combiner training set from a composite series mixing all
  // features: input = [feature predictions | raw window], target = next
  // value.
  GeneratorConfig gen;
  gen.length = config.composite_length;
  gen.noise_stddev = config.feature_config.noise_stddev;
  gen.seed = config.seed;
  const Series composite = GenerateCompositeAll(gen);
  const WindowedDataset ds = MakeWindows(composite, model.window_);

  const std::size_t in_dim = model.features_.size() + model.window_;
  nn::Matrix x(ds.Size(), in_dim);
  nn::Matrix y(ds.Size(), 1);
  for (std::size_t i = 0; i < ds.Size(); ++i) {
    const std::vector<double>& window = ds.inputs[i];
    for (std::size_t f = 0; f < model.features_.size(); ++f) {
      x(i, f) = model.features_[f].model.PredictScalar(window);
    }
    for (std::size_t j = 0; j < model.window_; ++j) {
      x(i, model.features_.size() + j) = window[j];
    }
    y(i, 0) = ds.targets[i];
  }

  Rng rng(config.seed ^ 0xabcdULL);
  model.combiner_.Add(std::make_unique<nn::Dense>(
      in_dim, 1, nn::Activation::kIdentity, rng));
  nn::Adam adam(config.combiner_lr);
  model.combiner_loss_ = model.combiner_.Fit(
      x, y, adam, config.combiner_epochs, config.combiner_batch, rng);

  model.train_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return model;
}

std::vector<double> DelphiModel::CombinerInput(
    const std::vector<double>& window) {
  assert(window.size() == window_);
  std::vector<double> input;
  input.reserve(features_.size() + window_);
  for (auto& fm : features_) {
    input.push_back(fm.model.PredictScalar(window));
  }
  input.insert(input.end(), window.begin(), window.end());
  return input;
}

double DelphiModel::Predict(const std::vector<double>& window) {
  return combiner_.PredictScalar(CombinerInput(window));
}

double DelphiModel::FeaturePrediction(std::size_t index,
                                      const std::vector<double>& window) {
  assert(index < features_.size());
  return features_[index].model.PredictScalar(window);
}

std::size_t DelphiModel::ParamCount() const {
  std::size_t total = combiner_.ParamCount();
  for (const auto& fm : features_) total += fm.model.ParamCount();
  return total;
}

std::size_t DelphiModel::TrainableParamCount() const {
  return combiner_.TrainableParamCount();
}

namespace {
constexpr std::uint32_t kDelphiMagic = 0x44504831;  // "DPH1"
}

Status DelphiModel::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status(ErrorCode::kIoError, "cannot open " + path);
  const std::uint32_t magic = kDelphiMagic;
  const std::uint32_t window = static_cast<std::uint32_t>(window_);
  const std::uint32_t features = static_cast<std::uint32_t>(features_.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&window), sizeof(window));
  out.write(reinterpret_cast<const char*>(&features), sizeof(features));
  for (const FeatureModel& fm : features_) {
    const std::int32_t id = static_cast<std::int32_t>(fm.feature);
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    fm.model.layer(0).SaveParams(out);
  }
  combiner_.layer(0).SaveParams(out);
  return out.good() ? Status::Ok()
                    : Status(ErrorCode::kIoError, "write failed: " + path);
}

Expected<DelphiModel> DelphiModel::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::uint32_t magic = 0, window = 0, features = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&window), sizeof(window));
  in.read(reinterpret_cast<char*>(&features), sizeof(features));
  if (!in || magic != kDelphiMagic) {
    return Error(ErrorCode::kParseError, "not a Delphi model file: " + path);
  }
  if (window == 0 || window > 256 || features == 0 || features > 64) {
    return Error(ErrorCode::kParseError, "implausible Delphi header");
  }
  DelphiModel model;
  model.window_ = window;
  Rng rng(0);  // weights are overwritten by LoadParams
  try {
    for (std::uint32_t f = 0; f < features; ++f) {
      std::int32_t id = 0;
      in.read(reinterpret_cast<char*>(&id), sizeof(id));
      if (!in) throw std::runtime_error("truncated feature header");
      FeatureModel fm;
      fm.feature = static_cast<TsFeature>(id);
      fm.model.Add(std::make_unique<nn::Dense>(
          window, 1, nn::Activation::kIdentity, rng));
      fm.model.layer(0).LoadParams(in);
      fm.model.FreezeAll();
      model.features_.push_back(std::move(fm));
    }
    model.combiner_.Add(std::make_unique<nn::Dense>(
        features + window, 1, nn::Activation::kIdentity, rng));
    model.combiner_.layer(0).LoadParams(in);
  } catch (const std::exception& e) {
    return Error(ErrorCode::kParseError, e.what());
  }
  return model;
}

DelphiModel DelphiModel::Clone() const {
  DelphiModel copy;
  copy.window_ = window_;
  copy.features_.reserve(features_.size());
  for (const auto& fm : features_) {
    FeatureModel cloned;
    cloned.feature = fm.feature;
    cloned.model = fm.model.Clone();
    cloned.train_loss = fm.train_loss;
    copy.features_.push_back(std::move(cloned));
  }
  copy.combiner_ = combiner_.Clone();
  copy.combiner_loss_ = combiner_loss_;
  copy.train_seconds_ = train_seconds_;
  return copy;
}

}  // namespace apollo::delphi
