// Pre-trained per-feature models — stage one of Delphi.
//
// For each of the eight time-series feature archetypes (§3.4.2) we train a
// one-Dense-layer network with window size 5 on synthetic data exhibiting
// only that feature, then freeze it. The stacked Delphi model combines
// their predictions.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/sequential.h"
#include "timeseries/generators.h"

namespace apollo::delphi {

inline constexpr std::size_t kDelphiWindow = 5;  // the paper's window size

struct FeatureModelConfig {
  std::size_t window = kDelphiWindow;
  std::size_t train_length = 4096;  // synthetic series length per feature
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  double learning_rate = 0.01;
  // White noise mixed into the synthetic training series.
  double noise_stddev = 0.01;
  std::uint64_t seed = 1234;
};

struct FeatureModel {
  TsFeature feature;
  nn::Sequential model;  // Dense(window -> 1), frozen after training
  double train_loss = 0.0;
};

// Trains one model per feature archetype and freezes it.
std::vector<FeatureModel> TrainFeatureModels(const FeatureModelConfig& config);

// Trains a single feature model (not frozen); exposed for tests/ablation.
FeatureModel TrainOneFeatureModel(TsFeature feature,
                                  const FeatureModelConfig& config);

}  // namespace apollo::delphi
