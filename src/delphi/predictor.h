// StreamingPredictor: online adapter from raw metric samples to Delphi.
//
// Monitor Hooks feed raw measured values (arbitrary units, e.g. bytes of
// NVMe capacity); the predictor maintains the sliding window and a running
// min/max normalization so Delphi — trained on [0,1] synthetic data — can
// produce predictions in the metric's native units between polls.
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "delphi/delphi_model.h"

namespace apollo::delphi {

class StreamingPredictor {
 public:
  // `model` is shared: feature models and combiner are only read during
  // inference through this adapter's own cloned stack, so each predictor
  // clones the model to keep layer caches private.
  explicit StreamingPredictor(const DelphiModel& model)
      : model_(model.Clone()) {}

  // Feeds a measured value; expands the normalization range as needed.
  void Observe(double value);

  // True once a full window of observations exists.
  bool Ready() const { return window_.size() >= model_.Window(); }

  // Predicts the next value in the metric's native units. Returns nullopt
  // until Ready(). Chains: predictions can be fed back via ObservePredicted
  // to forecast several steps ahead.
  std::optional<double> PredictNext();

  // Appends a prediction to the window (multi-step forecasting between two
  // real polls) without widening the normalization range.
  void ObservePredicted(double value);

  void Reset();

  std::size_t ObservationCount() const { return observations_; }

  // Inference-time calibration (default on): subtracts the model's response
  // to a constant window at the last value, so a flat history predicts
  // exactly "no change". Removes the training-distribution mean bias that
  // otherwise accumulates linearly over chained multi-step forecasts.
  void SetBiasCorrection(bool enabled) { bias_correction_ = enabled; }

 private:
  void Push(double value);
  double NormScale() const;

  DelphiModel model_;
  std::deque<double> window_;
  double min_seen_ = std::numeric_limits<double>::infinity();
  double max_seen_ = -std::numeric_limits<double>::infinity();
  std::size_t observations_ = 0;
  bool bias_correction_ = true;
};

}  // namespace apollo::delphi
