// Per-metric LSTM baseline (Figure 11's comparator).
//
// The paper trains one LSTM per collected metric (71,851 parameters, all
// trainable, 3-5 hours on their testbed) and shows it only infers well on
// the metric it was trained for. We build LSTM(hidden) + Dense(hidden -> 1)
// over the same window of 5; hidden defaults to 128 which lands in the same
// parameter regime (~67k).
#pragma once

#include <cstdint>

#include "nn/sequential.h"
#include "timeseries/series.h"

namespace apollo::delphi {

struct LstmBaselineConfig {
  std::size_t window = 5;
  std::size_t hidden = 128;
  std::size_t epochs = 4;
  std::size_t batch_size = 64;
  double learning_rate = 0.003;
  std::uint64_t seed = 77;
};

struct LstmBaseline {
  nn::Sequential model;
  double train_loss = 0.0;
  double train_seconds = 0.0;
  std::size_t param_count = 0;
};

// Builds an untrained LSTM+Dense regressor.
nn::Sequential MakeLstmRegressor(const LstmBaselineConfig& config);

// Trains the baseline on one metric's (normalized) series.
LstmBaseline TrainLstmBaseline(const Series& normalized_series,
                               const LstmBaselineConfig& config);

}  // namespace apollo::delphi
