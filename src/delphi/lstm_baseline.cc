#include "delphi/lstm_baseline.h"

#include <chrono>
#include <memory>

#include "nn/dense.h"
#include "nn/lstm.h"

namespace apollo::delphi {

nn::Sequential MakeLstmRegressor(const LstmBaselineConfig& config) {
  Rng rng(config.seed);
  nn::Sequential model;
  model.Add(std::make_unique<nn::Lstm>(/*input_size=*/1, config.hidden,
                                       /*seq_len=*/config.window, rng));
  model.Add(std::make_unique<nn::Dense>(config.hidden, 1,
                                        nn::Activation::kIdentity, rng));
  return model;
}

LstmBaseline TrainLstmBaseline(const Series& normalized_series,
                               const LstmBaselineConfig& config) {
  const auto start = std::chrono::steady_clock::now();

  LstmBaseline baseline;
  baseline.model = MakeLstmRegressor(config);
  baseline.param_count = baseline.model.ParamCount();

  const WindowedDataset ds = MakeWindows(normalized_series, config.window);
  nn::Matrix x(ds.Size(), config.window);
  nn::Matrix y(ds.Size(), 1);
  for (std::size_t i = 0; i < ds.Size(); ++i) {
    for (std::size_t j = 0; j < config.window; ++j) {
      x(i, j) = ds.inputs[i][j];
    }
    y(i, 0) = ds.targets[i];
  }

  Rng rng(config.seed ^ 0x5151ULL);
  nn::Adam adam(config.learning_rate);
  baseline.train_loss = baseline.model.Fit(x, y, adam, config.epochs,
                                           config.batch_size, rng);
  baseline.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return baseline;
}

}  // namespace apollo::delphi
