#include "delphi/predictor.h"

#include <algorithm>

namespace apollo::delphi {

void StreamingPredictor::Observe(double value) {
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
  Push(value);
  ++observations_;
}

void StreamingPredictor::ObservePredicted(double value) { Push(value); }

void StreamingPredictor::Push(double value) {
  window_.push_back(value);
  while (window_.size() > model_.Window()) window_.pop_front();
}

double StreamingPredictor::NormScale() const {
  const double range = max_seen_ - min_seen_;
  return range > 0.0 ? range : 1.0;
}

std::optional<double> StreamingPredictor::PredictNext() {
  if (!Ready()) return std::nullopt;
  const double scale = NormScale();
  std::vector<double> normalized;
  normalized.reserve(window_.size());
  for (double v : window_) normalized.push_back((v - min_seen_) / scale);
  double pred = model_.Predict(normalized);
  if (bias_correction_) {
    const double anchor = normalized.back();
    const std::vector<double> flat(normalized.size(), anchor);
    pred += anchor - model_.Predict(flat);
  }
  return pred * scale + min_seen_;
}

void StreamingPredictor::Reset() {
  window_.clear();
  min_seen_ = std::numeric_limits<double>::infinity();
  max_seen_ = -std::numeric_limits<double>::infinity();
  observations_ = 0;
}

}  // namespace apollo::delphi
