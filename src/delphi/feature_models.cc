#include "delphi/feature_models.h"

#include "nn/dense.h"
#include "timeseries/series.h"

namespace apollo::delphi {

namespace {

// Packs a windowed dataset into matrices for Sequential::Fit.
void ToMatrices(const WindowedDataset& ds, nn::Matrix& x, nn::Matrix& y) {
  const std::size_t n = ds.Size();
  const std::size_t w = n == 0 ? 0 : ds.inputs.front().size();
  x = nn::Matrix(n, w);
  y = nn::Matrix(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < w; ++j) x(i, j) = ds.inputs[i][j];
    y(i, 0) = ds.targets[i];
  }
}

}  // namespace

FeatureModel TrainOneFeatureModel(TsFeature feature,
                                  const FeatureModelConfig& config) {
  GeneratorConfig gen;
  gen.length = config.train_length;
  gen.noise_stddev = config.noise_stddev;
  gen.seed = config.seed ^ (0xfeedULL + static_cast<std::uint64_t>(feature));
  const Series series = GenerateFeature(feature, gen);
  const WindowedDataset ds = MakeWindows(series, config.window);

  nn::Matrix x, y;
  ToMatrices(ds, x, y);

  Rng rng(config.seed + static_cast<std::uint64_t>(feature) * 97ULL);
  FeatureModel fm;
  fm.feature = feature;
  fm.model.Add(std::make_unique<nn::Dense>(config.window, 1,
                                           nn::Activation::kIdentity, rng));
  nn::Adam adam(config.learning_rate);
  fm.train_loss =
      fm.model.Fit(x, y, adam, config.epochs, config.batch_size, rng);
  return fm;
}

std::vector<FeatureModel> TrainFeatureModels(
    const FeatureModelConfig& config) {
  std::vector<FeatureModel> models;
  models.reserve(kNumTsFeatures);
  for (TsFeature feature : AllTsFeatures()) {
    FeatureModel fm = TrainOneFeatureModel(feature, config);
    fm.model.FreezeAll();  // "set these pre-trained feature models to be
                           // untrainable" (§3.4.2)
    models.push_back(std::move(fm));
  }
  return models;
}

}  // namespace apollo::delphi
