// Delphi: the stacked predictive model (§3.4.2, Figure 3).
//
// Architecture: a window of 5 recent values feeds eight frozen one-Dense
// feature models in parallel; their eight scalar predictions, concatenated
// with the raw window, feed one trainable Dense combiner that learns how to
// weight the experts (and model residual noise). Only the combiner trains —
// 14 trainable parameters (13 weights + 1 bias), mirroring the paper's
// "14 trainable" count. The combiner is trained on a synthetic composite of
// all eight features, never on the target metric, which is exactly what the
// paper's generality claim (Figures 3(c) and 11) tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "delphi/feature_models.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "timeseries/series.h"

namespace apollo::delphi {

struct DelphiConfig {
  FeatureModelConfig feature_config;
  std::size_t combiner_epochs = 80;
  std::size_t combiner_batch = 32;
  double combiner_lr = 0.01;
  std::size_t composite_length = 4096;
  std::uint64_t seed = 4321;
};

class DelphiModel {
 public:
  // Builds and trains the full stack (feature models + combiner) on
  // synthetic data. Deterministic for a fixed config.
  static DelphiModel Train(const DelphiConfig& config = {});

  // Predicts the next value from a window of `Window()` recent values
  // (values are expected in the normalized [0,1] domain; see
  // StreamingPredictor for raw metric handling).
  double Predict(const std::vector<double>& window);

  std::size_t Window() const { return window_; }
  std::size_t ParamCount() const;           // total (frozen + trainable)
  std::size_t TrainableParamCount() const;  // combiner only
  std::size_t NumFeatureModels() const { return features_.size(); }

  // Per-feature-model prediction (exposed for Figure 3 style analysis).
  double FeaturePrediction(std::size_t index,
                           const std::vector<double>& window);

  // Training diagnostics.
  double combiner_loss() const { return combiner_loss_; }
  double train_seconds() const { return train_seconds_; }

  DelphiModel Clone() const;

  // Persists / restores the full stack (window size, feature-model
  // weights, combiner weights). Training once and shipping the weights is
  // the expected deployment flow (the paper trains Delphi offline).
  Status SaveToFile(const std::string& path) const;
  static Expected<DelphiModel> LoadFromFile(const std::string& path);

 private:
  DelphiModel() = default;

  std::vector<double> CombinerInput(const std::vector<double>& window);

  std::size_t window_ = kDelphiWindow;
  std::vector<FeatureModel> features_;
  nn::Sequential combiner_;
  double combiner_loss_ = 0.0;
  double train_seconds_ = 0.0;
};

}  // namespace apollo::delphi
