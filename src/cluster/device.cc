#include "cluster/device.h"

#include <algorithm>
#include <cmath>

namespace apollo {

const char* DeviceTypeName(DeviceType type) {
  switch (type) {
    case DeviceType::kRam:
      return "ram";
    case DeviceType::kNvme:
      return "nvme";
    case DeviceType::kSsd:
      return "ssd";
    case DeviceType::kHdd:
      return "hdd";
  }
  return "?";
}

int TierRank(DeviceType type) {
  switch (type) {
    case DeviceType::kRam:
      return 0;
    case DeviceType::kNvme:
      return 1;
    case DeviceType::kSsd:
      return 2;
    case DeviceType::kHdd:
      return 3;
  }
  return 4;
}

DeviceSpec DeviceSpec::Ram() {
  DeviceSpec spec;
  spec.type = DeviceType::kRam;
  spec.capacity_bytes = 96ULL << 30;
  spec.max_read_bw = 10e9;
  spec.max_write_bw = 10e9;
  spec.base_latency_s = 100e-9;
  spec.max_concurrency = 64;
  spec.watts_active = 15.0;
  spec.watts_idle = 5.0;
  return spec;
}

DeviceSpec DeviceSpec::Nvme() {
  DeviceSpec spec;
  spec.type = DeviceType::kNvme;
  spec.capacity_bytes = 250ULL << 30;
  spec.max_read_bw = 2.0e9;
  spec.max_write_bw = 1.2e9;
  spec.base_latency_s = 20e-6;
  spec.max_concurrency = 32;
  spec.watts_active = 8.0;
  spec.watts_idle = 2.0;
  return spec;
}

DeviceSpec DeviceSpec::Ssd() {
  DeviceSpec spec;
  spec.type = DeviceType::kSsd;
  spec.capacity_bytes = 150ULL << 30;
  spec.max_read_bw = 520e6;
  spec.max_write_bw = 480e6;
  spec.base_latency_s = 80e-6;
  spec.max_concurrency = 16;
  spec.watts_active = 5.0;
  spec.watts_idle = 1.0;
  return spec;
}

DeviceSpec DeviceSpec::Hdd() {
  DeviceSpec spec;
  spec.type = DeviceType::kHdd;
  spec.capacity_bytes = 1ULL << 40;
  spec.max_read_bw = 160e6;
  spec.max_write_bw = 140e6;
  spec.base_latency_s = 8e-3;
  spec.max_concurrency = 4;
  spec.watts_active = 9.0;
  spec.watts_idle = 4.0;
  return spec;
}

DeviceSpec DeviceSpec::OfType(DeviceType type) {
  switch (type) {
    case DeviceType::kRam:
      return Ram();
    case DeviceType::kNvme:
      return Nvme();
    case DeviceType::kSsd:
      return Ssd();
    case DeviceType::kHdd:
      return Hdd();
  }
  return Hdd();
}

Device::Device(std::string name, DeviceSpec spec)
    : name_(std::move(name)), spec_(spec) {}

Expected<IoResult> Device::Write(std::uint64_t bytes, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (used_bytes_ + bytes > spec_.capacity_bytes) {
    return Error(ErrorCode::kResourceExhausted,
                 name_ + ": write of " + std::to_string(bytes) +
                     " bytes exceeds remaining capacity");
  }
  auto result = SubmitLocked(bytes, now, /*is_write=*/true);
  if (result.ok()) {
    used_bytes_ += bytes;
    blocks_written_ += (bytes + spec_.block_size - 1) / spec_.block_size;
  }
  return result;
}

Expected<IoResult> Device::Read(std::uint64_t bytes, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto result = SubmitLocked(bytes, now, /*is_write=*/false);
  if (result.ok()) {
    blocks_read_ += (bytes + spec_.block_size - 1) / spec_.block_size;
  }
  return result;
}

Expected<IoResult> Device::SubmitLocked(std::uint64_t bytes, TimeNs now,
                                        bool is_write) {
  const double bw = is_write ? spec_.max_write_bw : spec_.max_read_bw;
  const TimeNs start = std::max(now, busy_until_);
  const double service_s =
      spec_.base_latency_s + static_cast<double>(bytes) / bw;
  const TimeNs end = start + static_cast<TimeNs>(service_s * 1e9);
  busy_until_ = end;
  history_.push_back(TransferRecord{start, end, bytes, is_write});
  PruneHistoryLocked(now);
  return IoResult{start, end, bytes};
}

Status Device::Reserve(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (used_bytes_ + bytes > spec_.capacity_bytes) {
    return Status(ErrorCode::kResourceExhausted,
                  name_ + ": reservation exceeds remaining capacity");
  }
  used_bytes_ += bytes;
  return Status::Ok();
}

Status Device::Free(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > used_bytes_) {
    return Status(ErrorCode::kInvalidArgument,
                  name_ + ": freeing more than used");
  }
  used_bytes_ -= bytes;
  return Status::Ok();
}

void Device::PruneHistoryLocked(TimeNs now) const {
  const TimeNs horizon = now - Seconds(5);
  while (!history_.empty() && history_.front().end < horizon) {
    history_.pop_front();
  }
}

std::uint64_t Device::UsedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_bytes_;
}

std::uint64_t Device::RemainingBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spec_.capacity_bytes - used_bytes_;
}

double Device::UtilizationFraction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(used_bytes_) /
         static_cast<double>(spec_.capacity_bytes);
}

int Device::QueueDepth(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  int depth = 0;
  for (const auto& rec : history_) {
    if (rec.end > now && rec.start <= now) ++depth;
    if (rec.start > now) ++depth;  // queued behind busy_until_
  }
  return depth;
}

double Device::RealBandwidth(TimeNs now, TimeNs window) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimeNs from = now - window;
  double bytes = 0.0;
  for (const auto& rec : history_) {
    // Overlap of [rec.start, rec.end] with [from, now], proportional bytes.
    const TimeNs lo = std::max(rec.start, from);
    const TimeNs hi = std::min(rec.end, now);
    if (hi <= lo) continue;
    const TimeNs span = rec.end - rec.start;
    if (span <= 0) {
      bytes += static_cast<double>(rec.bytes);
    } else {
      bytes += static_cast<double>(rec.bytes) *
               static_cast<double>(hi - lo) / static_cast<double>(span);
    }
  }
  return bytes / ToSeconds(window);
}

std::uint64_t Device::TotalBlocksRead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_read_;
}

std::uint64_t Device::TotalBlocksWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_written_;
}

std::uint64_t Device::BadBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bad_blocks_;
}

std::uint64_t Device::TotalBlocks() const {
  return spec_.capacity_bytes / spec_.block_size;
}

double Device::Health() const {
  const double total = static_cast<double>(TotalBlocks());
  if (total <= 0.0) return 1.0;
  return 1.0 - static_cast<double>(BadBlocks()) / total;
}

double Device::DegradationRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  const double lifetime_blocks =
      static_cast<double>(blocks_read_ + blocks_written_);
  if (lifetime_blocks <= 0.0) return 0.0;
  const double total = static_cast<double>(TotalBlocks());
  const double health =
      total > 0.0 ? 1.0 - static_cast<double>(bad_blocks_) / total : 1.0;
  return (1.0 - health) / lifetime_blocks;
}

double Device::PowerWatts(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool active = busy_until_ > now;
  return active ? spec_.watts_active : spec_.watts_idle;
}

double Device::TransfersPerSec(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TimeNs from = now - Seconds(1);
  int count = 0;
  for (const auto& rec : history_) {
    if (rec.end >= from && rec.end <= now) ++count;
  }
  return static_cast<double>(count);
}

void Device::InjectBadBlocks(std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  bad_blocks_ += count;
}

}  // namespace apollo
