// CSV import/export for series and capacity traces.
//
// The figure benches can dump ground truth, monitored, and predicted
// series as CSV (set APOLLO_CSV_DIR) so the paper's plots regenerate with
// any plotting tool; traces captured elsewhere can be replayed through a
// TraceReplayHook by loading them here.
#pragma once

#include <string>
#include <vector>

#include "cluster/workloads.h"
#include "common/expected.h"
#include "timeseries/series.h"

namespace apollo {

// Writes columns side by side: "t,<name1>,<name2>,..." with one row per
// index. Series shorter than the longest are padded with empty cells.
Status WriteSeriesCsv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<Series>& columns,
                      double t_step = 1.0);

// Reads a single-column or multi-column CSV written by WriteSeriesCsv;
// returns the named column (or column index via the second overload).
Expected<Series> ReadSeriesCsvColumn(const std::string& path,
                                     const std::string& name);
Expected<Series> ReadSeriesCsvColumn(const std::string& path,
                                     std::size_t column_index);

// Capacity traces: "t_ns,value" rows, one per step point.
Status WriteCapacityTraceCsv(const std::string& path,
                             const CapacityTrace& trace);
Expected<CapacityTrace> ReadCapacityTraceCsv(const std::string& path);

// Directory from the APOLLO_CSV_DIR environment variable, or empty when
// unset (benches skip CSV output then).
std::string CsvDirFromEnv();

}  // namespace apollo
