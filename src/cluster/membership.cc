#include "cluster/membership.h"

#include "cluster/placement.h"

namespace apollo::cluster {

const char* MemberStateName(MemberState state) {
  switch (state) {
    case MemberState::kJoining: return "joining";
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kDead: return "dead";
  }
  return "unknown";
}

MembershipTable::MembershipTable(std::string self_name,
                                 std::uint64_t self_generation,
                                 const std::vector<Member>& members,
                                 MembershipConfig config)
    : self_name_(std::move(self_name)), config_(config) {
  slots_.reserve(members.size());
  for (const Member& m : members) {
    Slot slot;
    slot.member = m;
    if (slot.member.name == self_name_) {
      self_index_ = slots_.size();
      slot.member.generation = self_generation;
      slot.member.state = MemberState::kJoining;
    } else {
      slot.member.generation = 0;
      slot.member.state = MemberState::kDead;
    }
    slots_.push_back(std::move(slot));
  }
}

void MembershipTable::TransitionLocked(Slot& slot, MemberState next) {
  if (slot.member.state == next) return;
  if (next == MemberState::kSuspect) ++suspects_;
  if (next == MemberState::kDead) ++deaths_;
  slot.member.state = next;
  ++version_;
}

void MembershipTable::Observe(const std::string& name,
                              std::uint64_t generation, MemberState state,
                              TimeNs now) {
  std::lock_guard<std::mutex> g(lock_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i == self_index_ || slots_[i].member.name != name) continue;
    Slot& slot = slots_[i];
    if (generation < slot.member.generation) return;  // stale incarnation
    if (generation > slot.member.generation) {
      // New incarnation: the old life's state is void. Count it as a
      // recovery when we had written the peer off.
      if (slot.member.generation != 0 &&
          slot.member.state == MemberState::kDead) {
        ++recoveries_;
      }
      slot.member.generation = generation;
    } else if (slot.member.state == MemberState::kDead &&
               state != MemberState::kDead) {
      ++recoveries_;
    }
    slot.last_ack = now;
    slot.ever_acked = true;
    TransitionLocked(slot, state);
    return;
  }
}

void MembershipTable::ProbeFailed(const std::string& name, TimeNs now) {
  (void)name;
  (void)now;
  // Timeouts in Tick() measure silence since last_ack; an explicit
  // failure record is not needed, but the hook is kept for symmetry and
  // future phi-accrual upgrades.
}

bool MembershipTable::Tick(TimeNs now) {
  std::lock_guard<std::mutex> g(lock_);
  const std::uint64_t before = version_;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (i == self_index_) continue;
    Slot& slot = slots_[i];
    if (!slot.ever_acked) continue;  // never joined: stays kDead
    if (slot.member.state == MemberState::kDead) continue;
    const TimeNs silent = now - slot.last_ack;
    if (silent > config_.dead_after) {
      TransitionLocked(slot, MemberState::kDead);
    } else if (silent > config_.suspect_after &&
               slot.member.state == MemberState::kAlive) {
      TransitionLocked(slot, MemberState::kSuspect);
    }
  }
  return version_ != before;
}

void MembershipTable::SetSelfState(MemberState state) {
  std::lock_guard<std::mutex> g(lock_);
  TransitionLocked(slots_[self_index_], state);
}

MemberState MembershipTable::SelfState() const {
  std::lock_guard<std::mutex> g(lock_);
  return slots_[self_index_].member.state;
}

ClusterMap MembershipTable::Snapshot() const {
  std::lock_guard<std::mutex> g(lock_);
  ClusterMap map;
  map.version = version_;
  map.replication_factor = replication_factor_;
  map.write_quorum = write_quorum_;
  map.members.reserve(slots_.size());
  for (const Slot& slot : slots_) map.members.push_back(slot.member);
  return map;
}

std::uint64_t MembershipTable::Suspects() const {
  std::lock_guard<std::mutex> g(lock_);
  return suspects_;
}

std::uint64_t MembershipTable::Deaths() const {
  std::lock_guard<std::mutex> g(lock_);
  return deaths_;
}

std::uint64_t MembershipTable::Recoveries() const {
  std::lock_guard<std::mutex> g(lock_);
  return recoveries_;
}

std::vector<const Member*> AliveReplicasFor(const PlacementRing& ring,
                                            const ClusterMap& map,
                                            std::string_view topic) {
  // Walk the ring over eligible nodes only: a dead base replica is
  // REPLACED by the next clockwise survivor rather than merely dropped,
  // so the set keeps its full width and write_quorum stays meetable with
  // any `rf` live nodes. Suspects stay eligible (they may just be slow);
  // joining and dead members are skipped until resync completes.
  const std::vector<std::string> names = ring.ReplicasFor(
      topic, map.replication_factor, [&map](const std::string& name) {
        const Member* m = map.Find(name);
        return m != nullptr && (m->state == MemberState::kAlive ||
                                m->state == MemberState::kSuspect);
      });
  std::vector<const Member*> out;
  out.reserve(names.size());
  for (const std::string& name : names) out.push_back(map.Find(name));
  return out;
}

}  // namespace apollo::cluster
