// Storage device model.
//
// Substitutes for the Ares cluster's real hardware: each device has a
// capacity and bandwidth envelope; I/O requests occupy the device for an
// analytically computed duration, so concurrent requests queue and
// interference becomes measurable — exactly the low-level metrics the
// paper's Fact Vertices poll (remaining capacity, queue size, real
// bandwidth, device health, ...).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/expected.h"

namespace apollo {

enum class DeviceType { kRam, kNvme, kSsd, kHdd };

const char* DeviceTypeName(DeviceType type);

// Tier ordering used by hierarchical middleware: lower value = faster tier.
int TierRank(DeviceType type);

struct DeviceSpec {
  DeviceType type = DeviceType::kHdd;
  std::uint64_t capacity_bytes = 0;
  double max_read_bw = 0.0;   // bytes/sec
  double max_write_bw = 0.0;  // bytes/sec
  double base_latency_s = 0.0;  // per-request fixed cost
  int max_concurrency = 1;      // DevC in the MSCA curation
  double watts_active = 0.0;
  double watts_idle = 0.0;
  int replication_level = 1;
  std::uint64_t block_size = 4096;

  // Ares-inspired default specs.
  static DeviceSpec Ram();    // 96 GB, ~10 GB/s
  static DeviceSpec Nvme();   // 250 GB, ~2 GB/s
  static DeviceSpec Ssd();    // 150 GB, ~500 MB/s
  static DeviceSpec Hdd();    // 1 TB, ~150 MB/s
  static DeviceSpec OfType(DeviceType type);
};

// Completed-transfer record kept in a sliding window for bandwidth/load
// accounting.
struct TransferRecord {
  TimeNs start;
  TimeNs end;
  std::uint64_t bytes;
  bool is_write;
};

struct IoResult {
  TimeNs start;      // when the device began servicing the request
  TimeNs end;        // completion time
  std::uint64_t bytes;
};

class Device {
 public:
  Device(std::string name, DeviceSpec spec);

  // Thread-safe. Submits a write of `bytes` at time `now`; allocates
  // capacity. Fails with kResourceExhausted when the device is full.
  Expected<IoResult> Write(std::uint64_t bytes, TimeNs now);

  // Thread-safe. Reads `bytes` (no capacity change).
  Expected<IoResult> Read(std::uint64_t bytes, TimeNs now);

  // Releases previously written capacity (flush/evict/delete).
  Status Free(std::uint64_t bytes);

  // Consumes capacity without modeling any transfer time — for staging
  // pre-existing data in experiment setups (capacity-only fill).
  Status Reserve(std::uint64_t bytes);

  // --- metric surface (all thread-safe) ---
  std::uint64_t CapacityBytes() const { return spec_.capacity_bytes; }
  std::uint64_t UsedBytes() const;
  std::uint64_t RemainingBytes() const;
  double UtilizationFraction() const;

  // Requests whose completion time is still in the future at `now`.
  int QueueDepth(TimeNs now) const;

  // Achieved bandwidth (bytes/s) over the trailing `window` ending at `now`.
  double RealBandwidth(TimeNs now, TimeNs window = Seconds(1)) const;
  double MaxBandwidth() const { return spec_.max_write_bw; }

  // Table-1 curation ingredients.
  std::uint64_t TotalBlocksRead() const;
  std::uint64_t TotalBlocksWritten() const;
  std::uint64_t BadBlocks() const;
  std::uint64_t TotalBlocks() const;
  double Health() const;  // 1 - bad/total
  double DegradationRate() const;
  int NumRequests(TimeNs now) const { return QueueDepth(now); }

  // Power draw at `now` (active when servicing, else idle).
  double PowerWatts(TimeNs now) const;
  // Completed transfers in the trailing second.
  double TransfersPerSec(TimeNs now) const;

  // Fault injection for tests: marks blocks bad, degrading Health().
  void InjectBadBlocks(std::uint64_t count);

  const DeviceSpec& spec() const { return spec_; }
  const std::string& name() const { return name_; }

 private:
  Expected<IoResult> SubmitLocked(std::uint64_t bytes, TimeNs now,
                                  bool is_write);
  void PruneHistoryLocked(TimeNs now) const;

  const std::string name_;
  const DeviceSpec spec_;

  mutable std::mutex mu_;
  std::uint64_t used_bytes_ = 0;
  TimeNs busy_until_ = 0;
  std::uint64_t blocks_read_ = 0;
  std::uint64_t blocks_written_ = 0;
  std::uint64_t bad_blocks_ = 0;
  // Sliding history of recent transfers (pruned past ~5s of device time).
  mutable std::deque<TransferRecord> history_;
};

}  // namespace apollo
