// Consistent-hash topic -> node placement for the replicated cluster.
//
// Every node is mapped onto a 64-bit hash ring at `vnodes` points; a
// topic's replica set is the first `replication_factor` DISTINCT nodes
// found walking clockwise from the topic's hash. The walk is computed over
// the full configured member list, so placement is a pure function of
// (members, topic) — every node and client derives the same base replica
// set without coordination. Failover re-runs the same walk restricted to
// ELIGIBLE (alive-or-suspect) nodes: a dead replica is replaced by the
// next node clockwise, so the replica set keeps its full width and the
// write quorum stays meetable with any `rf` survivors. Because the walk
// order is fixed, a node death shifts only the topics it carried
// (consistent hashing's minimal-movement property) and a rejoining node
// reclaims exactly its old ranges.
//
// The hash is FNV-1a 64 finished with a SplitMix64 mix. std::hash is
// deliberately not used: placement must agree across processes and
// standard-library implementations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace apollo::cluster {

// Stable cross-process hash for ring points and topic keys.
std::uint64_t PlacementHash(std::string_view key);

class PlacementRing {
 public:
  // `nodes` is the full configured membership (order-insensitive: ring
  // position depends only on each name's hash). Duplicate names collapse.
  explicit PlacementRing(const std::vector<std::string>& nodes,
                         std::uint32_t vnodes = 64);

  // First `rf` distinct node names clockwise from hash(topic), over ALL
  // configured nodes (liveness-agnostic base order).
  std::vector<std::string> ReplicasFor(std::string_view topic,
                                       std::uint32_t rf) const;

  // Same walk, skipping nodes for which `eligible` is false. This is the
  // failover selection: dead nodes are passed over and the set refills
  // from the next clockwise survivors, so it only narrows when fewer
  // than `rf` eligible nodes exist at all.
  std::vector<std::string> ReplicasFor(
      std::string_view topic, std::uint32_t rf,
      const std::function<bool(const std::string&)>& eligible) const;

  std::size_t NodeCount() const { return node_names_.size(); }
  const std::vector<std::string>& Nodes() const { return node_names_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  // index into node_names_
  };

  std::vector<std::string> node_names_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace apollo::cluster
