// Heartbeat-driven cluster membership: who is in the ring, in what state,
// and at which incarnation.
//
// Each node probes every configured peer on a fixed interval. The
// per-peer state machine is driven by probe outcomes and wall-clock
// timeouts:
//
//     kJoining --resync done--> kAlive
//     kAlive   --no ack for suspect_after--> kSuspect
//     kSuspect --no ack for dead_after----> kDead
//     any      --ack received------------> peer's self-reported state
//
// A peer's `generation` is its process-start timestamp: a restarted node
// comes back with a strictly newer generation, so an ack from the new
// incarnation is never mistaken for the old one's late reply — the table
// records the generation bump as a recovery, and the rejoining node
// re-enters through kJoining (resync) rather than resuming as kAlive.
//
// MembershipTable is a passive bookkeeping structure: the owner (the
// cluster controller) feeds it probe results and calls Tick() to apply
// timeouts. All methods are thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace apollo::cluster {

enum class MemberState : std::uint8_t {
  kJoining = 0,  // resyncing from peers; not yet a placement target
  kAlive = 1,
  kSuspect = 2,  // missed heartbeats; still a placement target
  kDead = 3,     // failed over: no longer a placement target
};

const char* MemberStateName(MemberState state);

struct Member {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t generation = 0;  // process-start stamp; 0 = never seen
  MemberState state = MemberState::kDead;
};

// Versioned snapshot of the whole cluster: pushed to clients on change and
// served on kGetClusterMap. `version` increases monotonically on the node
// that produced the map; clients keep the freshest map per source node.
struct ClusterMap {
  std::uint64_t version = 0;
  std::uint32_t replication_factor = 2;
  std::uint32_t write_quorum = 2;
  std::vector<Member> members;

  const Member* Find(const std::string& name) const {
    for (const Member& m : members)
      if (m.name == name) return &m;
    return nullptr;
  }
};

struct MembershipConfig {
  TimeNs suspect_after = Millis(400);  // alive -> suspect without an ack
  TimeNs dead_after = Millis(1000);    // -> dead without an ack
};

class MembershipTable {
 public:
  // `self` must be one of `members` (matched by name). Peers start kDead
  // with generation 0: they join the ring on their first heartbeat, so a
  // cold-starting cluster never routes to a node that was never up.
  MembershipTable(std::string self_name, std::uint64_t self_generation,
                  const std::vector<Member>& members, MembershipConfig config);

  // Records a heartbeat ack (or an observed inbound heartbeat) from
  // `name` reporting its own `generation` and `state`.
  void Observe(const std::string& name, std::uint64_t generation,
               MemberState state, TimeNs now);

  // Records a failed probe round-trip. Failures do not move the state
  // machine directly — Tick()'s timeouts do — but they stop last-ack
  // refreshes, which is what the timeouts measure.
  void ProbeFailed(const std::string& name, TimeNs now);

  // Applies suspect/dead timeouts. Returns true when any state changed
  // (the caller bumps the map version and pushes the new map).
  bool Tick(TimeNs now);

  void SetSelfState(MemberState state);
  MemberState SelfState() const;

  // Current map including self. Bumps the version iff `changed` was
  // returned by an earlier mutation; callers use Snapshot() freely.
  ClusterMap Snapshot() const;

  // Counters for telemetry (monotonic since construction).
  std::uint64_t Suspects() const;
  std::uint64_t Deaths() const;
  std::uint64_t Recoveries() const;

 private:
  struct Slot {
    Member member;
    TimeNs last_ack = 0;
    bool ever_acked = false;
  };

  // Applies one state transition under lock_, bumping version/counters.
  void TransitionLocked(Slot& slot, MemberState next);

  mutable std::mutex lock_;
  std::string self_name_;
  MembershipConfig config_;
  std::vector<Slot> slots_;
  std::size_t self_index_ = 0;
  std::uint64_t version_ = 1;
  std::uint32_t replication_factor_ = 2;
  std::uint32_t write_quorum_ = 2;
  std::uint64_t suspects_ = 0;
  std::uint64_t deaths_ = 0;
  std::uint64_t recoveries_ = 0;

  friend class MembershipTableTestPeer;

 public:
  void SetQuorum(std::uint32_t rf, std::uint32_t quorum) {
    std::lock_guard<std::mutex> g(lock_);
    replication_factor_ = rf;
    write_quorum_ = quorum;
  }
};

// Replica selection over a map: the ring walk restricted to alive-or-
// suspect members, so a dead base replica is replaced by the next
// clockwise survivor and the set keeps its full `replication_factor`
// width while enough nodes live. The first member is the topic's
// primary. Pointers alias `map.members`.
class PlacementRing;
std::vector<const Member*> AliveReplicasFor(const PlacementRing& ring,
                                            const ClusterMap& map,
                                            std::string_view topic);

}  // namespace apollo::cluster
