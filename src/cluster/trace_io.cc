#include "cluster/trace_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace apollo {

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<Series>& columns, double t_step) {
  if (names.size() != columns.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "names/columns size mismatch");
  }
  std::ofstream out(path);
  if (!out) return Status(ErrorCode::kIoError, "cannot open " + path);

  out << "t";
  for (const std::string& name : names) out << "," << name;
  out << "\n";

  std::size_t rows = 0;
  for (const Series& column : columns) {
    rows = std::max(rows, column.size());
  }
  out.precision(17);
  for (std::size_t r = 0; r < rows; ++r) {
    out << static_cast<double>(r) * t_step;
    for (const Series& column : columns) {
      out << ",";
      if (r < column.size()) out << column[r];
    }
    out << "\n";
  }
  return out.good() ? Status::Ok()
                    : Status(ErrorCode::kIoError, "write failed: " + path);
}

namespace {

Expected<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  if (!line.empty() && line.back() == ',') cells.push_back("");
  return cells;
}

}  // namespace

Expected<Series> ReadSeriesCsvColumn(const std::string& path,
                                     const std::string& name) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Error(ErrorCode::kParseError, "empty csv: " + path);
  }
  auto cells = SplitCsvLine(header);
  if (!cells.ok()) return cells.error();
  for (std::size_t c = 0; c < cells->size(); ++c) {
    if ((*cells)[c] == name) {
      in.close();
      return ReadSeriesCsvColumn(path, c);
    }
  }
  return Error(ErrorCode::kNotFound, "no column '" + name + "' in " + path);
}

Expected<Series> ReadSeriesCsvColumn(const std::string& path,
                                     std::size_t column_index) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Error(ErrorCode::kParseError, "empty csv: " + path);
  }
  Series out;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = SplitCsvLine(line);
    if (!cells.ok()) return cells.error();
    if (column_index >= cells->size()) {
      return Error(ErrorCode::kParseError,
                   "row with too few columns in " + path);
    }
    const std::string& cell = (*cells)[column_index];
    if (cell.empty()) continue;  // padded tail of a shorter series
    out.push_back(std::strtod(cell.c_str(), nullptr));
  }
  return out;
}

Status WriteCapacityTraceCsv(const std::string& path,
                             const CapacityTrace& trace) {
  std::ofstream out(path);
  if (!out) return Status(ErrorCode::kIoError, "cannot open " + path);
  out << "t_ns,value\n";
  out.precision(17);
  for (const auto& [t, v] : trace.points()) {
    out << t << "," << v << "\n";
  }
  return out.good() ? Status::Ok()
                    : Status(ErrorCode::kIoError, "write failed: " + path);
}

Expected<CapacityTrace> ReadCapacityTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error(ErrorCode::kIoError, "cannot open " + path);
  std::string line;
  if (!std::getline(in, line) || line.rfind("t_ns", 0) != 0) {
    return Error(ErrorCode::kParseError, "bad trace header in " + path);
  }
  CapacityTrace trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    char* end = nullptr;
    const long long t = std::strtoll(line.c_str(), &end, 10);
    if (end == line.c_str() || *end != ',') {
      return Error(ErrorCode::kParseError, "bad trace row: " + line);
    }
    const double v = std::strtod(end + 1, nullptr);
    trace.Append(static_cast<TimeNs>(t), v);
  }
  return trace;
}

std::string CsvDirFromEnv() {
  const char* dir = std::getenv("APOLLO_CSV_DIR");
  return dir == nullptr ? std::string() : std::string(dir);
}

}  // namespace apollo
