// Simulated cluster: the Ares-testbed substitute.
//
// Holds compute and storage nodes, a network model with per-pair ping
// times, and lookup helpers used by Fact Vertices ("node3.nvme") and the
// insight curations (tier aggregation, node availability).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "common/expected.h"
#include "common/rng.h"
#include "pubsub/broker.h"

namespace apollo {

struct ClusterConfig {
  int compute_nodes = 4;
  int storage_nodes = 4;
  TimeNs base_network_latency = Millis(0.05);  // 50us: 40GbE + RoCE
  double network_jitter_frac = 0.2;
  std::uint64_t seed = 2024;
};

// Pairwise-latency network with deterministic per-pair jitter — gives each
// node pair a distinct, stable ping time (the Network Health curation).
class JitteredNetwork final : public NetworkModel {
 public:
  JitteredNetwork(TimeNs base, double jitter_frac, std::uint64_t seed)
      : base_(base), jitter_frac_(jitter_frac), seed_(seed) {}

  TimeNs Latency(NodeId from, NodeId to) const override;

 private:
  TimeNs base_;
  double jitter_frac_;
  std::uint64_t seed_;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  // Ares-like layout: compute nodes get one NVMe each; storage nodes get an
  // SSD and an HDD each.
  static std::unique_ptr<Cluster> MakeAresLike(const ClusterConfig& config);

  Node& AddNode(const std::string& name, NodeSpec spec);

  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  std::size_t NumNodes() const { return nodes_.size(); }

  Expected<Node*> FindNode(const std::string& name) const;
  Expected<Node*> FindNode(NodeId id) const;

  // Qualified device lookup: "node3.nvme".
  Expected<Device*> FindDevice(const std::string& qualified_name) const;

  // Every device of a type across the cluster (a storage tier).
  std::vector<Device*> DevicesOfType(DeviceType type) const;

  std::vector<Node*> ComputeNodes() const;
  std::vector<Node*> StorageNodes() const;
  std::vector<NodeId> OnlineNodes() const;

  const NetworkModel& network() const { return *network_; }
  std::shared_ptr<const NetworkModel> shared_network() const {
    return network_;
  }

  // Ping time between two nodes (round-trip = 2x one-way latency).
  TimeNs PingTime(NodeId a, NodeId b) const {
    return 2 * network_->Latency(a, b);
  }

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::shared_ptr<const NetworkModel> network_;
};

}  // namespace apollo
