#include "cluster/slurm_sim.h"

#include <algorithm>

namespace apollo {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "PENDING";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kFailed:
      return "FAILED";
  }
  return "?";
}

JobId SlurmSim::Submit(const std::string& name, std::vector<NodeId> nodes,
                       int procs_per_node, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  const JobId id = next_id_++;
  JobInfo job;
  job.id = id;
  job.name = name;
  job.state = JobState::kRunning;
  job.nodes = std::move(nodes);
  job.procs_per_node = procs_per_node;
  job.submit_time = now;
  job.start_time = now;
  jobs_.emplace(id, std::move(job));
  return id;
}

Status SlurmSim::Complete(JobId id, TimeNs now, bool failed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status(ErrorCode::kNotFound, "no job " + std::to_string(id));
  }
  if (it->second.state != JobState::kRunning) {
    return Status(ErrorCode::kFailedPrecondition,
                  "job " + std::to_string(id) + " is not running");
  }
  it->second.state = failed ? JobState::kFailed : JobState::kCompleted;
  it->second.end_time = now;
  return Status::Ok();
}

Status SlurmSim::RecordIo(JobId id, std::uint64_t bytes_read,
                          std::uint64_t bytes_written) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status(ErrorCode::kNotFound, "no job " + std::to_string(id));
  }
  it->second.bytes_read += bytes_read;
  it->second.bytes_written += bytes_written;
  return Status::Ok();
}

Expected<JobInfo> SlurmSim::Query(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Error(ErrorCode::kNotFound, "no job " + std::to_string(id));
  }
  return it->second;
}

std::vector<JobInfo> SlurmSim::RunningJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) out.push_back(job);
  }
  return out;
}

std::vector<JobInfo> SlurmSim::AllJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(job);
  return out;
}

std::vector<NodeId> SlurmSim::BusyNodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeId> out;
  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    for (NodeId node : job.nodes) {
      if (std::find(out.begin(), out.end(), node) == out.end()) {
        out.push_back(node);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace apollo
