#include "cluster/cluster.h"

namespace apollo {

TimeNs JitteredNetwork::Latency(NodeId from, NodeId to) const {
  if (from == to || from == kLocalNode || to == kLocalNode) return 0;
  // Deterministic per-pair jitter from a hash of the (unordered) pair.
  const std::uint64_t lo = static_cast<std::uint64_t>(std::min(from, to));
  const std::uint64_t hi = static_cast<std::uint64_t>(std::max(from, to));
  SplitMix64 hash(seed_ ^ (lo * 0x1f3ULL) ^ (hi << 20));
  const double unit =
      static_cast<double>(hash.Next() >> 11) * 0x1.0p-53;  // [0,1)
  const double factor = 1.0 + jitter_frac_ * (2.0 * unit - 1.0);
  return static_cast<TimeNs>(static_cast<double>(base_) * factor);
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      network_(std::make_shared<JitteredNetwork>(
          config.base_network_latency, config.network_jitter_frac,
          config.seed)) {}

std::unique_ptr<Cluster> Cluster::MakeAresLike(const ClusterConfig& config) {
  auto cluster = std::make_unique<Cluster>(config);
  for (int i = 0; i < config.compute_nodes; ++i) {
    Node& node = cluster->AddNode("compute" + std::to_string(i),
                                  NodeSpec::AresCompute());
    node.AddDevice("ram", DeviceSpec::Ram());
    node.AddDevice("nvme", DeviceSpec::Nvme());
  }
  for (int i = 0; i < config.storage_nodes; ++i) {
    Node& node = cluster->AddNode("storage" + std::to_string(i),
                                  NodeSpec::AresStorage());
    node.AddDevice("ssd", DeviceSpec::Ssd());
    node.AddDevice("hdd", DeviceSpec::Hdd());
  }
  return cluster;
}

Node& Cluster::AddNode(const std::string& name, NodeSpec spec) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, name, spec));
  return *nodes_.back();
}

Expected<Node*> Cluster::FindNode(const std::string& name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return Error(ErrorCode::kNotFound, "no node named " + name);
}

Expected<Node*> Cluster::FindNode(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) {
    return Error(ErrorCode::kNotFound,
                 "no node with id " + std::to_string(id));
  }
  return nodes_[static_cast<std::size_t>(id)].get();
}

Expected<Device*> Cluster::FindDevice(
    const std::string& qualified_name) const {
  const auto dot = qualified_name.find('.');
  if (dot == std::string::npos) {
    return Error(ErrorCode::kInvalidArgument,
                 "device name must be node.device: " + qualified_name);
  }
  auto node = FindNode(qualified_name.substr(0, dot));
  if (!node.ok()) return node.error();
  return (*node)->FindDevice(qualified_name.substr(dot + 1));
}

std::vector<Device*> Cluster::DevicesOfType(DeviceType type) const {
  std::vector<Device*> out;
  for (const auto& node : nodes_) {
    for (const auto& device : node->devices()) {
      if (device->spec().type == type) out.push_back(device.get());
    }
  }
  return out;
}

std::vector<Node*> Cluster::ComputeNodes() const {
  std::vector<Node*> out;
  for (const auto& node : nodes_) {
    if (node->spec().kind == NodeKind::kCompute) out.push_back(node.get());
  }
  return out;
}

std::vector<Node*> Cluster::StorageNodes() const {
  std::vector<Node*> out;
  for (const auto& node : nodes_) {
    if (node->spec().kind == NodeKind::kStorage) out.push_back(node.get());
  }
  return out;
}

std::vector<NodeId> Cluster::OnlineNodes() const {
  std::vector<NodeId> out;
  for (const auto& node : nodes_) {
    if (node->Online()) out.push_back(node->id());
  }
  return out;
}

}  // namespace apollo
