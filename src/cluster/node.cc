#include "cluster/node.h"

namespace apollo {

NodeSpec NodeSpec::AresCompute() {
  NodeSpec spec;
  spec.kind = NodeKind::kCompute;
  spec.cpu_cores = 40;
  spec.ram_bytes = 96ULL << 30;
  return spec;
}

NodeSpec NodeSpec::AresStorage() {
  NodeSpec spec;
  spec.kind = NodeKind::kStorage;
  spec.cpu_cores = 8;
  spec.ram_bytes = 32ULL << 30;
  spec.cpu_idle_watts = 40.0;
  spec.cpu_max_watts = 110.0;
  return spec;
}

Node::Node(NodeId id, std::string name, NodeSpec spec)
    : id_(id), name_(std::move(name)), spec_(spec) {}

Device& Node::AddDevice(const std::string& short_name, DeviceSpec spec) {
  devices_.push_back(
      std::make_unique<Device>(name_ + "." + short_name, spec));
  return *devices_.back();
}

Expected<Device*> Node::FindDevice(const std::string& short_name) const {
  const std::string qualified = name_ + "." + short_name;
  for (const auto& device : devices_) {
    if (device->name() == qualified || device->name() == short_name) {
      return device.get();
    }
  }
  return Error(ErrorCode::kNotFound,
               "no device " + short_name + " on " + name_);
}

double Node::PowerWatts(TimeNs now) const {
  double watts = spec_.cpu_idle_watts +
                 CpuLoad() * (spec_.cpu_max_watts - spec_.cpu_idle_watts);
  for (const auto& device : devices_) watts += device->PowerWatts(now);
  return watts;
}

double Node::TransfersPerSec(TimeNs now) const {
  double total = 0.0;
  for (const auto& device : devices_) total += device->TransfersPerSec(now);
  return total;
}

}  // namespace apollo
