// Workload generators and trace replay.
//
// The paper's adaptivity/Delphi experiments (Figures 8-10) replay a captured
// HACC-IO capacity trace "with an emulation, so that there would be minimal
// issues with time drift or interference between runs" — we generate the
// equivalent traces synthetically:
//   regular:  38000 bytes written to the NVMe every 5 seconds;
//   irregular: 19000-38000 bytes every 5-20 seconds (uniform random).
//
// Figure 11 needs per-device SAR-style metric series collected while FIO
// runs; MakeSarMetricTrace drives a phase-based FIO-like workload against a
// Device model in virtual time and samples the requested metric every
// second.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/device.h"
#include "common/clock.h"
#include "common/rng.h"
#include "timeseries/series.h"

namespace apollo {

// Piecewise-constant metric-over-time trace (capacity after each write).
class CapacityTrace {
 public:
  // Points must be appended in increasing time order.
  void Append(TimeNs t, double value);

  // Value of the step function at time t (value of the latest point at or
  // before t; the first point's value before that).
  double ValueAt(TimeNs t) const;

  // Uniform sampling every `dt` in [0, end] inclusive of 0.
  Series SampleEvery(TimeNs dt, TimeNs end) const;

  TimeNs Duration() const;
  std::size_t NumPoints() const { return points_.size(); }
  const std::vector<std::pair<TimeNs, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<TimeNs, double>> points_;
};

struct HaccTraceConfig {
  bool irregular = false;
  TimeNs duration = Seconds(1800);  // the paper replays 30 minutes
  double initial_capacity = 250e9;  // NVMe capacity in bytes
  // Regular pattern.
  std::uint64_t regular_bytes = 38000;
  TimeNs regular_period = Seconds(5);
  // Irregular pattern.
  std::uint64_t min_bytes = 19000;
  std::uint64_t max_bytes = 38000;
  TimeNs min_period = Seconds(5);
  TimeNs max_period = Seconds(20);
  std::uint64_t seed = 7;
};

CapacityTrace MakeHaccCapacityTrace(const HaccTraceConfig& config);

// SAR "-d" style per-device metrics (what the paper collects per drive and
// partition with "-dbp -P ALL 1").
enum class SarMetric {
  kTps,            // transfers per second
  kReadKbPerSec,
  kWriteKbPerSec,
  kAvgQueueSize,
  kAwaitMs,        // average request service time
  kUtilPercent,
};

const char* SarMetricName(SarMetric metric);
std::vector<SarMetric> AllSarMetrics();

struct SarTraceConfig {
  DeviceType device = DeviceType::kNvme;
  std::size_t length = 70000;  // paper: 10K train + 60K test points
  std::uint64_t seed = 99;
};

// One sample per (virtual) second of a FIO-like phase workload.
Series MakeSarMetricTrace(SarMetric metric, const SarTraceConfig& config);

// IOR-like closed-loop I/O driver for overhead experiments (Figure 5):
// issues fixed-size writes/reads against a device as fast as the (real)
// clock allows for `duration`, from the calling thread.
struct IorStats {
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
};
IorStats RunIorLike(Device& device, Clock& clock, TimeNs duration,
                    std::uint64_t transfer_bytes = 1 << 20);

}  // namespace apollo
