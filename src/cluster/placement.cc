#include "cluster/placement.h"

#include <algorithm>

namespace apollo::cluster {

namespace {

// SplitMix64 finisher: spreads FNV's weak low bits across the word so
// vnode points land uniformly on the ring.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t PlacementHash(std::string_view key) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a 64 offset basis
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return Mix(h);
}

PlacementRing::PlacementRing(const std::vector<std::string>& nodes,
                             std::uint32_t vnodes) {
  node_names_ = nodes;
  std::sort(node_names_.begin(), node_names_.end());
  node_names_.erase(std::unique(node_names_.begin(), node_names_.end()),
                    node_names_.end());
  if (vnodes == 0) vnodes = 1;
  ring_.reserve(node_names_.size() * vnodes);
  for (std::uint32_t n = 0; n < node_names_.size(); ++n) {
    std::uint64_t h = PlacementHash(node_names_[n]);
    for (std::uint32_t v = 0; v < vnodes; ++v) {
      // Derive each vnode point from the previous by mixing: cheap, stable,
      // and independent of how many vnodes other nodes use.
      h = Mix(h + v + 1);
      ring_.push_back(Point{h, n});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.node < b.node;
  });
}

std::vector<std::string> PlacementRing::ReplicasFor(std::string_view topic,
                                                    std::uint32_t rf) const {
  return ReplicasFor(topic, rf, [](const std::string&) { return true; });
}

std::vector<std::string> PlacementRing::ReplicasFor(
    std::string_view topic, std::uint32_t rf,
    const std::function<bool(const std::string&)>& eligible) const {
  std::vector<std::string> out;
  if (ring_.empty() || rf == 0) return out;
  const std::uint64_t h = PlacementHash(topic);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t v) { return p.hash < v; });
  std::vector<bool> seen(node_names_.size(), false);
  for (std::size_t step = 0; step < ring_.size() && out.size() < rf; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->node]) {
      seen[it->node] = true;
      if (eligible(node_names_[it->node])) {
        out.push_back(node_names_[it->node]);
      }
    }
    ++it;
  }
  return out;
}

}  // namespace apollo::cluster
