// Slurm-like job/allocation table.
//
// The Allocation Characteristics curation (Table 1, row 15) reads job info
// "provided by Slurm"; this simulated scheduler exposes the same query
// surface: per-job node counts, process distribution, and I/O byte
// counters.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "pubsub/broker.h"

namespace apollo {

using JobId = std::uint64_t;

enum class JobState { kPending, kRunning, kCompleted, kFailed };

const char* JobStateName(JobState state);

struct JobInfo {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kPending;
  std::vector<NodeId> nodes;
  int procs_per_node = 1;
  TimeNs submit_time = 0;
  TimeNs start_time = 0;
  TimeNs end_time = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  int TotalProcs() const {
    return procs_per_node * static_cast<int>(nodes.size());
  }
};

class SlurmSim {
 public:
  SlurmSim() = default;

  // Submits and immediately starts a job on the given nodes.
  JobId Submit(const std::string& name, std::vector<NodeId> nodes,
               int procs_per_node, TimeNs now);

  Status Complete(JobId id, TimeNs now, bool failed = false);

  // Accumulates I/O counters for a running job.
  Status RecordIo(JobId id, std::uint64_t bytes_read,
                  std::uint64_t bytes_written);

  Expected<JobInfo> Query(JobId id) const;       // like `scontrol show job`
  std::vector<JobInfo> RunningJobs() const;      // like `squeue`
  std::vector<JobInfo> AllJobs() const;          // like `sacct`

  // Nodes allocated to at least one running job.
  std::vector<NodeId> BusyNodes() const;

 private:
  mutable std::mutex mu_;
  std::map<JobId, JobInfo> jobs_;
  JobId next_id_ = 1;
};

}  // namespace apollo
