// Cluster node model: a named host owning storage devices plus CPU/memory
// state that Fact Vertices can poll.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cluster/device.h"
#include "common/clock.h"
#include "common/expected.h"
#include "pubsub/broker.h"

namespace apollo {

enum class NodeKind { kCompute, kStorage };

struct NodeSpec {
  NodeKind kind = NodeKind::kCompute;
  int cpu_cores = 40;           // Ares compute: dual Xeon Silver 4114
  std::uint64_t ram_bytes = 96ULL << 30;
  double cpu_idle_watts = 60.0;
  double cpu_max_watts = 170.0;

  static NodeSpec AresCompute();  // 40 cores, 96GB RAM, NVMe
  static NodeSpec AresStorage();  // 8 cores, 32GB RAM, SSD+HDD
};

class Node {
 public:
  Node(NodeId id, std::string name, NodeSpec spec);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  const NodeSpec& spec() const { return spec_; }

  // Device management. Names are qualified as "<node>.<device>".
  Device& AddDevice(const std::string& short_name, DeviceSpec spec);
  Expected<Device*> FindDevice(const std::string& short_name) const;
  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  // --- pollable node metrics ---
  double CpuLoad() const { return cpu_load_.load(); }     // 0..1
  void SetCpuLoad(double load) { cpu_load_.store(load); }
  std::uint64_t MemUsedBytes() const { return mem_used_.load(); }
  void SetMemUsed(std::uint64_t bytes) { mem_used_.store(bytes); }
  std::uint64_t MemTotalBytes() const { return spec_.ram_bytes; }

  bool Online() const { return online_.load(); }
  void SetOnline(bool online) { online_.store(online); }

  // Node power = CPU (load-proportional) + all devices.
  double PowerWatts(TimeNs now) const;
  // Completed device transfers/sec summed over local devices.
  double TransfersPerSec(TimeNs now) const;

 private:
  const NodeId id_;
  const std::string name_;
  const NodeSpec spec_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::atomic<double> cpu_load_{0.0};
  std::atomic<std::uint64_t> mem_used_{0};
  std::atomic<bool> online_{true};
};

}  // namespace apollo
