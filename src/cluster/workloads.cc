#include "cluster/workloads.h"

#include <algorithm>
#include <cassert>

namespace apollo {

void CapacityTrace::Append(TimeNs t, double value) {
  assert(points_.empty() || t >= points_.back().first);
  points_.emplace_back(t, value);
}

double CapacityTrace::ValueAt(TimeNs t) const {
  if (points_.empty()) return 0.0;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimeNs target, const std::pair<TimeNs, double>& p) {
        return target < p.first;
      });
  if (it == points_.begin()) return points_.front().second;
  return std::prev(it)->second;
}

Series CapacityTrace::SampleEvery(TimeNs dt, TimeNs end) const {
  Series out;
  if (dt <= 0) return out;
  for (TimeNs t = 0; t <= end; t += dt) out.push_back(ValueAt(t));
  return out;
}

TimeNs CapacityTrace::Duration() const {
  return points_.empty() ? 0 : points_.back().first;
}

CapacityTrace MakeHaccCapacityTrace(const HaccTraceConfig& config) {
  CapacityTrace trace;
  Rng rng(config.seed);
  double capacity = config.initial_capacity;
  trace.Append(0, capacity);
  TimeNs t = 0;
  while (t < config.duration) {
    TimeNs period;
    std::uint64_t bytes;
    if (config.irregular) {
      period = static_cast<TimeNs>(rng.UniformInt(config.min_period,
                                                  config.max_period));
      bytes = static_cast<std::uint64_t>(rng.UniformInt(
          static_cast<std::int64_t>(config.min_bytes),
          static_cast<std::int64_t>(config.max_bytes)));
    } else {
      period = config.regular_period;
      bytes = config.regular_bytes;
    }
    t += period;
    if (t > config.duration) break;
    capacity -= static_cast<double>(bytes);
    if (capacity < 0.0) capacity = config.initial_capacity;  // drain/reset
    trace.Append(t, capacity);
  }
  return trace;
}

const char* SarMetricName(SarMetric metric) {
  switch (metric) {
    case SarMetric::kTps:
      return "tps";
    case SarMetric::kReadKbPerSec:
      return "rkB/s";
    case SarMetric::kWriteKbPerSec:
      return "wkB/s";
    case SarMetric::kAvgQueueSize:
      return "aqu-sz";
    case SarMetric::kAwaitMs:
      return "await";
    case SarMetric::kUtilPercent:
      return "%util";
  }
  return "?";
}

std::vector<SarMetric> AllSarMetrics() {
  return {SarMetric::kTps,          SarMetric::kReadKbPerSec,
          SarMetric::kWriteKbPerSec, SarMetric::kAvgQueueSize,
          SarMetric::kAwaitMs,      SarMetric::kUtilPercent};
}

Series MakeSarMetricTrace(SarMetric metric, const SarTraceConfig& config) {
  // Phase-based FIO-like driver: cycles through write-burst, read-burst,
  // mixed, and idle phases with randomized lengths/intensities, sampling
  // the requested metric once per virtual second.
  Rng rng(config.seed ^
          (static_cast<std::uint64_t>(config.device) << 8) ^
          static_cast<std::uint64_t>(metric));
  Device device("trace", DeviceSpec::OfType(config.device));

  enum Phase { kWriteBurst, kReadBurst, kMixed, kIdle };
  Phase phase = kWriteBurst;
  std::size_t phase_left = 20;

  Series out;
  out.reserve(config.length);

  double read_bytes_this_sec = 0.0;
  double write_bytes_this_sec = 0.0;
  double await_sum_s = 0.0;
  int completed = 0;

  for (std::size_t second = 0; second < config.length; ++second) {
    const TimeNs now = Seconds(static_cast<double>(second));
    if (phase_left == 0) {
      phase = static_cast<Phase>(rng.NextBounded(4));
      phase_left = 10 + rng.NextBounded(50);
    }
    --phase_left;

    read_bytes_this_sec = 0.0;
    write_bytes_this_sec = 0.0;
    await_sum_s = 0.0;
    completed = 0;

    int ops = 0;
    switch (phase) {
      case kWriteBurst:
        ops = 8 + static_cast<int>(rng.NextBounded(24));
        break;
      case kReadBurst:
        ops = 8 + static_cast<int>(rng.NextBounded(24));
        break;
      case kMixed:
        ops = 4 + static_cast<int>(rng.NextBounded(16));
        break;
      case kIdle:
        ops = rng.Bernoulli(0.2) ? 1 : 0;
        break;
    }

    for (int op = 0; op < ops; ++op) {
      const std::uint64_t bytes =
          (64 + rng.NextBounded(1024)) * 1024ULL;  // 64KB..~1MB
      const bool is_read =
          phase == kReadBurst || (phase == kMixed && rng.Bernoulli(0.5));
      const TimeNs op_time =
          now + static_cast<TimeNs>(rng.NextBounded(kNsPerSec));
      if (is_read) {
        auto result = device.Read(bytes, op_time);
        if (result.ok()) {
          read_bytes_this_sec += static_cast<double>(bytes);
          await_sum_s += ToSeconds(result->end - op_time);
          ++completed;
        }
      } else {
        auto result = device.Write(bytes, op_time);
        if (result.ok()) {
          write_bytes_this_sec += static_cast<double>(bytes);
          await_sum_s += ToSeconds(result->end - op_time);
          ++completed;
        } else {
          // Full: recycle the device's space and retry next op.
          device.Free(device.UsedBytes() / 2);
        }
      }
    }

    double value = 0.0;
    const TimeNs sample_at = now + Seconds(1);
    switch (metric) {
      case SarMetric::kTps:
        value = device.TransfersPerSec(sample_at);
        break;
      case SarMetric::kReadKbPerSec:
        value = read_bytes_this_sec / 1024.0;
        break;
      case SarMetric::kWriteKbPerSec:
        value = write_bytes_this_sec / 1024.0;
        break;
      case SarMetric::kAvgQueueSize:
        value = static_cast<double>(device.QueueDepth(sample_at));
        break;
      case SarMetric::kAwaitMs:
        value = completed > 0
                    ? 1000.0 * await_sum_s / static_cast<double>(completed)
                    : 0.0;
        break;
      case SarMetric::kUtilPercent:
        value = 100.0 *
                std::min(1.0, device.RealBandwidth(sample_at, Seconds(1)) /
                                  device.MaxBandwidth());
        break;
    }
    out.push_back(value);
  }
  return out;
}

IorStats RunIorLike(Device& device, Clock& clock, TimeNs duration,
                    std::uint64_t transfer_bytes) {
  // Closed-loop driver: like IOR, each op waits for the previous one to
  // complete, so throughput is bounded by the device model, not the CPU.
  IorStats stats;
  const TimeNs end = clock.Now() + duration;
  bool write_phase = true;
  while (clock.Now() < end) {
    const TimeNs now = clock.Now();
    Expected<IoResult> result(Error(ErrorCode::kInternal, ""));
    if (write_phase) {
      result = device.Write(transfer_bytes, now);
      if (!result.ok()) {
        device.Free(device.UsedBytes());
        continue;
      }
    } else {
      result = device.Read(transfer_bytes, now);
      if (!result.ok()) continue;
    }
    write_phase = !write_phase;
    ++stats.ops;
    stats.bytes += transfer_bytes;
    if (result->end > clock.Now()) {
      clock.SleepUntil(std::min(result->end, end));
    }
  }
  return stats;
}

}  // namespace apollo
