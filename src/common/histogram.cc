#include "common/histogram.h"

#include <cstdio>

namespace apollo {

namespace {
std::string FormatNs(double ns) {
  char buf[48];
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}
}  // namespace

std::string LatencyHistogram::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "mean=%s p50=%s p99=%s max=%s (n=%llu)",
                FormatNs(MeanNs()).c_str(),
                FormatNs(static_cast<double>(PercentileNs(50))).c_str(),
                FormatNs(static_cast<double>(PercentileNs(99))).c_str(),
                FormatNs(static_cast<double>(MaxNs())).c_str(),
                static_cast<unsigned long long>(Count()));
  return buf;
}

}  // namespace apollo
