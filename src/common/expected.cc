#include "common/expected.h"

namespace apollo {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kParseError:
      return "PARSE_ERROR";
    case ErrorCode::kIoError:
      return "IO_ERROR";
  }
  return "UNKNOWN";
}

}  // namespace apollo
