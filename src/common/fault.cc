#include "common/fault.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

namespace apollo {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kPublish:
      return "publish";
    case FaultSite::kFetch:
      return "fetch";
    case FaultSite::kArchiveWrite:
      return "archive_write";
    case FaultSite::kVertexPoll:
      return "vertex_poll";
    case FaultSite::kVertexStall:
      return "vertex_stall";
    case FaultSite::kArchiveFsync:
      return "archive_fsync";
    case FaultSite::kNetSend:
      return "net_send";
    case FaultSite::kNetRecv:
      return "net_recv";
    case FaultSite::kConnDrop:
      return "conn_drop";
    case FaultSite::kBatchDecode:
      return "batch_decode";
    case FaultSite::kShmAttach:
      return "shm_attach";
    case FaultSite::kHeartbeatLoss:
      return "heartbeat_loss";
    case FaultSite::kReplicaLag:
      return "replica_lag";
    case FaultSite::kCompactWrite:
      return "compact_write";
    case FaultSite::kBlockRead:
      return "block_read";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx = Index(spec.site);
  armed_[idx].push_back(Armed{std::move(spec)});
  site_armed_[idx].store(true, std::memory_order_release);
}

void FaultInjector::Disarm(FaultSite site) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx = Index(site);
  armed_[idx].clear();
  site_armed_[idx].store(false, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    armed_[i].clear();
    hits_[i] = 0;
    fires_[i] = 0;
    site_armed_[i].store(false, std::memory_order_release);
  }
}

std::optional<FaultAction> FaultInjector::Evaluate(FaultSite site,
                                                   std::string_view topic) {
  const std::size_t idx = Index(site);
  if (!site_armed_[idx].load(std::memory_order_acquire)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<FaultAction> action;
  for (Armed& armed : armed_[idx]) {
    const FaultSpec& spec = armed.spec;
    if (!spec.topic.empty() && spec.topic != topic) continue;
    const std::uint64_t hit = armed.hits++;
    ++hits_[idx];
    if (armed.fires >= spec.max_fires) continue;
    const bool scripted =
        std::find(spec.fire_on_hits.begin(), spec.fire_on_hits.end(), hit) !=
        spec.fire_on_hits.end();
    const bool random = spec.probability > 0.0 && rng_.Bernoulli(spec.probability);
    if (!scripted && !random) continue;
    ++armed.fires;
    ++fires_[idx];
    if (!action.has_value()) action = FaultAction{spec.delay_ns};
  }
  return action;
}

std::uint64_t FaultInjector::Hits(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_[Index(site)];
}

std::uint64_t FaultInjector::Fires(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fires_[Index(site)];
}

TimeNs BackoffForAttempt(const RetryPolicy& policy, int attempt) {
  if (attempt < 1) attempt = 1;
  double backoff = static_cast<double>(policy.initial_backoff) *
                   std::pow(policy.multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(policy.max_backoff));
  return static_cast<TimeNs>(backoff);
}

TimeNs JitteredBackoffForAttempt(const RetryPolicy& policy, int attempt) {
  const TimeNs ceiling = BackoffForAttempt(policy, attempt);
  if (ceiling <= 0) return ceiling;
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0) return ceiling;
  // Seed each thread from its id so concurrent retriers draw independent
  // sequences without locking (determinism across runs is not a goal
  // here: jitter exists precisely to decorrelate).
  thread_local Rng rng(
      0x6A177E12ULL ^
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  const double lo = static_cast<double>(ceiling) * (1.0 - jitter);
  const double span = static_cast<double>(ceiling) - lo;
  const TimeNs wait = static_cast<TimeNs>(lo + rng.NextDouble() * span);
  return std::max<TimeNs>(wait, 1);
}

bool RetryableError(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kIoError ||
         code == ErrorCode::kResourceExhausted;
}

}  // namespace apollo
