// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage: APOLLO_LOG(INFO) << "deployed " << n << " vertices";
// The level can be raised globally (e.g. to WARN during benchmarks) via
// logging::SetMinLevel.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace apollo::logging {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetMinLevel(Level level);
Level MinLevel();

const char* LevelName(Level level);

// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(Level level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  Level level_;
  std::ostringstream stream_;
};

}  // namespace apollo::logging

#define APOLLO_LOG_DEBUG \
  ::apollo::logging::LogMessage(::apollo::logging::Level::kDebug, __FILE__, __LINE__)
#define APOLLO_LOG_INFO \
  ::apollo::logging::LogMessage(::apollo::logging::Level::kInfo, __FILE__, __LINE__)
#define APOLLO_LOG_WARN \
  ::apollo::logging::LogMessage(::apollo::logging::Level::kWarn, __FILE__, __LINE__)
#define APOLLO_LOG_ERROR \
  ::apollo::logging::LogMessage(::apollo::logging::Level::kError, __FILE__, __LINE__)

#define APOLLO_LOG(severity) APOLLO_LOG_##severity
