// Deterministic, fast pseudo-random number generation.
//
// All stochastic components (workload generators, synthetic time-series
// features, NN weight init) draw from these generators so that every test
// and benchmark is reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace apollo {

// SplitMix64: used to seed Xoshiro and for cheap hashing of seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextBounded(std::uint64_t n) { return NextU64() % n; }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller (cached second value).
  double Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Avoid log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // Exponential with rate lambda.
  double Exponential(double lambda) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace apollo
