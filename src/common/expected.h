// Lightweight result type for recoverable errors.
//
// Apollo avoids exceptions on hot paths; fallible operations return
// Expected<T> (or Status for void results) carrying an error code + message.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace apollo {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kParseError,
  kIoError,
};

const char* ErrorCodeName(ErrorCode code);

class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Status: success or an Error.
class Status {
 public:
  Status() : error_(ErrorCode::kOk, "") {}
  Status(ErrorCode code, std::string message)  // NOLINT(google-explicit-constructor)
      : error_(code, std::move(message)) {}
  Status(Error e) : error_(std::move(e)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return error_.code() == ErrorCode::kOk; }
  ErrorCode code() const { return error_.code(); }
  const std::string& message() const { return error_.message(); }
  std::string ToString() const {
    return ok() ? "OK" : error_.ToString();
  }

  static Status Ok() { return Status(); }

 private:
  Error error_;
};

// Expected<T>: either a T or an Error.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}       // NOLINT
  Expected(Error error) : data_(std::move(error)) {}   // NOLINT
  Expected(ErrorCode code, std::string message)
      : data_(Error(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  Status status() const {
    if (ok()) return Status::Ok();
    return Status(error().code(), error().message());
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::variant<T, Error> data_;
};

}  // namespace apollo
