// Process resource accounting via /proc (Linux).
//
// Substitutes for the paper's PAT/SAR measurement harness: benches sample
// CPU time and resident set size of this process to report monitoring
// overhead (Figures 5 and 12(c)).
#pragma once

#include <cstdint>

namespace apollo {

struct ProcSample {
  // Cumulative user + system CPU time consumed by the process, seconds.
  double cpu_seconds = 0.0;
  // Resident set size, bytes.
  std::uint64_t rss_bytes = 0;
  // Wall time of the sample (monotonic), seconds.
  double wall_seconds = 0.0;
};

// Reads /proc/self/stat and /proc/self/status. Returns zeros on failure
// (non-Linux or restricted /proc).
ProcSample SampleSelf();

// CPU utilization (0..n_cores) between two samples.
double CpuUtilBetween(const ProcSample& begin, const ProcSample& end);

}  // namespace apollo
