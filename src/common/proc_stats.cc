#include "common/proc_stats.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace apollo {

namespace {
double NowWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

ProcSample SampleSelf() {
  ProcSample sample;
  sample.wall_seconds = NowWallSeconds();

  std::FILE* stat = std::fopen("/proc/self/stat", "r");
  if (stat != nullptr) {
    // Fields 14 (utime) and 15 (stime), in clock ticks. Field 2 (comm) can
    // contain spaces but is parenthesized; skip past the closing paren.
    char buf[4096];
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, stat);
    std::fclose(stat);
    buf[n] = '\0';
    const char* p = std::strrchr(buf, ')');
    if (p != nullptr) {
      long utime = 0, stime = 0;
      // After ')': field 3 onwards. utime is field 14, stime 15 => the 12th
      // and 13th whitespace-separated tokens after the state char.
      int field = 2;  // we are at end of field 2
      const char* cursor = p + 1;
      const char* utime_tok = nullptr;
      const char* stime_tok = nullptr;
      while (*cursor != '\0') {
        while (*cursor == ' ') ++cursor;
        if (*cursor == '\0') break;
        ++field;
        if (field == 14) utime_tok = cursor;
        if (field == 15) {
          stime_tok = cursor;
          break;
        }
        while (*cursor != ' ' && *cursor != '\0') ++cursor;
      }
      if (utime_tok != nullptr && stime_tok != nullptr) {
        utime = std::strtol(utime_tok, nullptr, 10);
        stime = std::strtol(stime_tok, nullptr, 10);
        const double ticks = static_cast<double>(sysconf(_SC_CLK_TCK));
        sample.cpu_seconds = static_cast<double>(utime + stime) / ticks;
      }
    }
  }

  std::FILE* status = std::fopen("/proc/self/status", "r");
  if (status != nullptr) {
    char line[256];
    while (std::fgets(line, sizeof(line), status) != nullptr) {
      if (std::strncmp(line, "VmRSS:", 6) == 0) {
        long kb = 0;
        std::sscanf(line + 6, "%ld", &kb);
        sample.rss_bytes = static_cast<std::uint64_t>(kb) * 1024ULL;
        break;
      }
    }
    std::fclose(status);
  }
  return sample;
}

double CpuUtilBetween(const ProcSample& begin, const ProcSample& end) {
  const double wall = end.wall_seconds - begin.wall_seconds;
  if (wall <= 0.0) return 0.0;
  return (end.cpu_seconds - begin.cpu_seconds) / wall;
}

}  // namespace apollo
