#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace apollo::logging {

namespace {
std::atomic<Level> g_min_level{Level::kInfo};
std::mutex g_emit_mutex;
}  // namespace

void SetMinLevel(Level level) { g_min_level.store(level); }
Level MinLevel() { return g_min_level.load(); }

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

LogMessage::LogMessage(Level level, const char* file, int line)
    : enabled_(level >= MinLevel() && level != Level::kOff), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace apollo::logging
