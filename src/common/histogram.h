// Log-bucketed latency histogram with percentile queries.
//
// Used by the benchmark harnesses to report p50/p95/p99 query latencies
// (the paper reports averages; percentiles expose the tail the averages
// hide). Thread-compatible: callers serialize access or keep one per
// thread and Merge().
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace apollo {

class LatencyHistogram {
 public:
  // Buckets are log-spaced: value v lands in bucket floor(log2(v)+1)
  // (bucket 0 holds v <= 1). Covers [1ns, ~584y] in 64 buckets.
  LatencyHistogram() : buckets_(64, 0) {}

  void Record(std::int64_t value_ns) {
    if (value_ns < 1) value_ns = 1;
    int bucket = 0;
    std::uint64_t v = static_cast<std::uint64_t>(value_ns);
    while (v > 1) {
      v >>= 1;
      ++bucket;
    }
    if (bucket >= static_cast<int>(buckets_.size())) {
      bucket = static_cast<int>(buckets_.size()) - 1;
    }
    ++buckets_[static_cast<std::size_t>(bucket)];
    ++count_;
    sum_ns_ += value_ns;
    if (value_ns > max_ns_) max_ns_ = value_ns;
    if (value_ns < min_ns_ || count_ == 1) min_ns_ = value_ns;
  }

  std::uint64_t Count() const { return count_; }
  std::int64_t MinNs() const { return count_ == 0 ? 0 : min_ns_; }
  std::int64_t MaxNs() const { return max_ns_; }
  double MeanNs() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }

  // Percentile in [0, 100]. p=0 returns the exact minimum; other ranks
  // return the lower bound of the bucket holding the p-th sample
  // (log-bucket resolution: within 2x of the true value).
  std::int64_t PercentileNs(double p) const {
    if (count_ == 0) return 0;
    if (p <= 0) return MinNs();
    if (p > 100) p = 100;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      seen += buckets_[b];
      if (seen >= rank && buckets_[b] > 0) {
        return static_cast<std::int64_t>(1ULL << b);
      }
    }
    return max_ns_;
  }

  void Merge(const LatencyHistogram& other) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    if (other.count_ > 0) {
      if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
      if (count_ == other.count_ || other.min_ns_ < min_ns_) {
        min_ns_ = other.min_ns_;
      }
    }
  }

  void Reset() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ns_ = 0;
    min_ns_ = 0;
    max_ns_ = 0;
  }

  // Rebuilds a histogram from externally maintained log2 bucket counts
  // (the obs::Histogram atomic cells). `buckets` uses this class's
  // bucketing; extra buckets beyond 64 are ignored, count is derived from
  // the bucket sums. `min_ns` is ignored when empty (obs cells park min at
  // INT64_MAX until the first sample).
  static LatencyHistogram FromBuckets(const std::uint64_t* buckets,
                                      std::size_t n, std::int64_t sum_ns,
                                      std::int64_t min_ns,
                                      std::int64_t max_ns) {
    LatencyHistogram h;
    for (std::size_t b = 0; b < n && b < h.buckets_.size(); ++b) {
      h.buckets_[b] = buckets[b];
      h.count_ += buckets[b];
    }
    if (h.count_ > 0) {
      h.sum_ns_ = sum_ns;
      h.min_ns_ = min_ns;
      h.max_ns_ = max_ns;
    }
    return h;
  }

  // "mean=12.3us p50=8.2us p99=130us max=1.2ms (n=1000)"
  std::string Summary() const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ns_ = 0;
  std::int64_t min_ns_ = 0;
  std::int64_t max_ns_ = 0;
};

}  // namespace apollo
