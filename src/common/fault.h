// Fault injection + retry policy for Apollo's own fabric.
//
// Apollo reports storage health, so its monitoring fabric must stay correct
// while the cluster it observes is failing. The FaultInjector provides
// deterministic, seedable fault points at the fabric's loss surfaces
// (publish drop/delay, broker fetch timeout, archiver write failure, vertex
// poll crash/stall). Sites are evaluated only when an injector is attached;
// production paths pay one relaxed pointer load when none is.
//
// Faults fire either probabilistically (per-hit Bernoulli from a seeded
// generator) or on a scripted schedule (explicit hit indices), so chaos
// tests can be replayed exactly from a seed.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/rng.h"

namespace apollo {

// Where in the fabric a fault can fire.
enum class FaultSite : std::uint8_t {
  kPublish = 0,    // broker publish: tuple drop, or added latency
  kFetch,          // broker fetch/latest: timeout, or added latency
  kArchiveWrite,   // archiver append: write failure
  kVertexPoll,     // vertex timer body: crash (timer dies, crash flagged)
  kVertexStall,    // vertex timer body: silent stall (timer dies, no flag)
  kArchiveFsync,   // archiver segment fsync: durability barrier failure
  kNetSend,        // wire frame send: failure, or added latency
  kNetRecv,        // wire frame receive/dispatch: drop, or added latency
  kConnDrop,       // connection: abrupt close before dispatching a frame
  kBatchDecode,    // daemon batch-publish decode: whole batch rejected
  kShmAttach,      // shm-lane handshake: attach refused (client falls
                   // back to TCP batching)
  kHeartbeatLoss,  // cluster probe round-trip: heartbeat dropped (the
                   // peer looks silent; drives suspect/dead transitions)
  kReplicaLag,     // daemon-to-daemon replicate: failure, or added
                   // latency (a slow replica delays quorum)
  kCompactWrite,   // cold-tier compaction: block write / rename /
                   // manifest commit failure (WAL stays authoritative)
  kBlockRead,      // cold-tier block read: block skipped, scan degrades
                   // to whatever the healthy blocks hold
};
inline constexpr std::size_t kNumFaultSites = 15;

const char* FaultSiteName(FaultSite site);

// One armed fault point. `probability` and `fire_on_hits` compose: the
// fault fires on every scripted hit index and, independently, on each hit
// with the given probability.
struct FaultSpec {
  FaultSite site = FaultSite::kPublish;
  // Restricts the fault to one topic/label; empty matches every hit.
  std::string topic;
  double probability = 0.0;
  // Scripted schedule: 0-based indices (per spec) of hits that must fire.
  std::vector<std::uint64_t> fire_on_hits;
  // Non-zero turns the fault into a delay (operation proceeds after the
  // clock is charged); zero makes it a hard failure.
  TimeNs delay_ns = 0;
  // Upper bound on total fires of this spec.
  std::uint64_t max_fires = UINT64_MAX;
};

struct FaultAction {
  TimeNs delay_ns = 0;  // 0 = hard failure, >0 = injected latency
  bool fails() const { return delay_ns == 0; }
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0x5eedfa17ULL) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(FaultSpec spec);
  // Removes every spec armed at `site`.
  void Disarm(FaultSite site);
  // Disarms all sites and zeroes counters (the seed is kept).
  void Reset();

  // Consulted by instrumented code at each fault point. Returns the action
  // to take, or nullopt to proceed normally. Thread-safe; deterministic for
  // a fixed seed and hit sequence.
  std::optional<FaultAction> Evaluate(FaultSite site, std::string_view topic);

  // Observability for tests: hits = evaluations that matched an armed spec,
  // fires = evaluations that produced an action.
  std::uint64_t Hits(FaultSite site) const;
  std::uint64_t Fires(FaultSite site) const;

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  static std::size_t Index(FaultSite site) {
    return static_cast<std::size_t>(site);
  }

  mutable std::mutex mu_;
  Rng rng_;
  std::array<std::vector<Armed>, kNumFaultSites> armed_;
  std::array<std::uint64_t, kNumFaultSites> hits_{};
  std::array<std::uint64_t, kNumFaultSites> fires_{};
  // Lock-free fast path: sites with nothing armed skip the mutex entirely.
  std::array<std::atomic<bool>, kNumFaultSites> site_armed_{};
};

// Retry-with-exponential-backoff policy for fallible fabric operations
// (broker publish/fetch, archiver flush). Backoff time is charged to the
// operation's clock, so simulated runs account for it in virtual time.
struct RetryPolicy {
  int max_attempts = 4;          // total attempts, including the first
  TimeNs initial_backoff = 100 * kNsPerUs;
  double multiplier = 2.0;
  TimeNs max_backoff = 10 * kNsPerMs;
  // Total time budget across attempts measured from the first attempt;
  // 0 disables the deadline.
  TimeNs deadline = 0;
  // Fraction of each backoff randomized away ("full jitter" at 1.0): the
  // actual wait is uniform in [backoff*(1-jitter), backoff]. Randomizing
  // the wait keeps N clients recovering from the same node death from
  // hammering it in lockstep on every retry round.
  double jitter = 1.0;
};

// Backoff before retry `attempt` (1-based: the wait after the first
// failure is BackoffForAttempt(policy, 1)). Deterministic ceiling —
// `policy.jitter` is NOT applied here (tests and deadline math rely on
// the exact exponential); use JitteredBackoffForAttempt on real sleeps.
TimeNs BackoffForAttempt(const RetryPolicy& policy, int attempt);

// BackoffForAttempt with `policy.jitter` applied: uniform in
// [ceiling*(1-jitter), ceiling], never below 1ns for a non-zero ceiling.
// Draws from a thread-local generator seeded per thread, so concurrent
// retriers decorrelate without sharing state.
TimeNs JitteredBackoffForAttempt(const RetryPolicy& policy, int attempt);

// Errors worth retrying: transient unavailability (injected drops and
// timeouts surface as kUnavailable, real I/O hiccups as kIoError).
bool RetryableError(ErrorCode code);

}  // namespace apollo
