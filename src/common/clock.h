// Clock abstraction used throughout Apollo.
//
// Latency/throughput experiments run against the real monotonic clock;
// workload-replay experiments (HACC capacity traces, middleware runs) run
// against a virtual SimClock so that "30 minutes" of simulated monitoring
// completes in milliseconds of wall time while preserving event ordering.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace apollo {

// Nanoseconds since an arbitrary epoch. All Apollo timestamps use this unit.
using TimeNs = std::int64_t;

constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

constexpr TimeNs Seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNsPerSec));
}
constexpr TimeNs Millis(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr double ToSeconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

// Interface implemented by RealClock and SimClock. Thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in nanoseconds since the clock's epoch.
  virtual TimeNs Now() const = 0;

  // Blocks (really or virtually) until Now() >= deadline.
  virtual void SleepUntil(TimeNs deadline) = 0;

  void SleepFor(TimeNs duration) { SleepUntil(Now() + duration); }

  // Accounts `duration` of elapsed time for an operation the caller just
  // performed. On the real clock this sleeps; on a SimClock it advances
  // virtual time directly, so single-threaded simulations can charge
  // operation costs (monitor-hook probes, network hops) without blocking
  // the thread that drives the clock.
  virtual void Charge(TimeNs duration) { SleepFor(duration); }
};

// Monotonic wall clock.
class RealClock final : public Clock {
 public:
  TimeNs Now() const override;
  void SleepUntil(TimeNs deadline) override;

  // Process-wide instance; epoch is the first call in the process.
  static RealClock& Instance();

 private:
  RealClock();
  TimeNs epoch_;
};

// Manually advanced virtual clock. Sleepers block on a condition variable
// until another thread advances the clock past their deadline. AdvanceTo /
// AdvanceBy wake all satisfied sleepers.
class SimClock final : public Clock {
 public:
  explicit SimClock(TimeNs start = 0) : now_(start) {}

  TimeNs Now() const override { return now_.load(std::memory_order_acquire); }

  void SleepUntil(TimeNs deadline) override;

  // Charging costs advances virtual time (see Clock::Charge).
  void Charge(TimeNs duration) override { AdvanceBy(duration); }

  // Moves time forward to `t` (no-op when t <= Now()) and wakes sleepers.
  void AdvanceTo(TimeNs t);
  void AdvanceBy(TimeNs dt) { AdvanceTo(Now() + dt); }

  // Number of threads currently blocked in SleepUntil. Lets a driver thread
  // advance time only once all workers are quiescent.
  int SleeperCount() const;

  // Earliest deadline among blocked sleepers, or -1 when none. Drivers use
  // this to advance exactly to the next event.
  TimeNs NextDeadline() const;

 private:
  std::atomic<TimeNs> now_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int sleepers_ = 0;
  // Multiset semantics kept simple: deadlines of current sleepers.
  std::vector<TimeNs> deadlines_;
};

}  // namespace apollo
