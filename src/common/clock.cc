#include "common/clock.h"

#include <algorithm>
#include <thread>

namespace apollo {

namespace {
TimeNs MonotonicNowRaw() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : epoch_(MonotonicNowRaw()) {}

TimeNs RealClock::Now() const { return MonotonicNowRaw() - epoch_; }

void RealClock::SleepUntil(TimeNs deadline) {
  const TimeNs now = Now();
  if (deadline <= now) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(deadline - now));
}

RealClock& RealClock::Instance() {
  static RealClock clock;
  return clock;
}

void SimClock::SleepUntil(TimeNs deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  if (now_.load(std::memory_order_acquire) >= deadline) return;
  ++sleepers_;
  deadlines_.push_back(deadline);
  cv_.wait(lock, [&] {
    return now_.load(std::memory_order_acquire) >= deadline;
  });
  --sleepers_;
  auto it = std::find(deadlines_.begin(), deadlines_.end(), deadline);
  if (it != deadlines_.end()) deadlines_.erase(it);
  cv_.notify_all();
}

void SimClock::AdvanceTo(TimeNs t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TimeNs cur = now_.load(std::memory_order_acquire);
    if (t <= cur) return;
    now_.store(t, std::memory_order_release);
  }
  cv_.notify_all();
}

int SimClock::SleeperCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleepers_;
}

TimeNs SimClock::NextDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (deadlines_.empty()) return -1;
  return *std::min_element(deadlines_.begin(), deadlines_.end());
}

}  // namespace apollo
