// Hierarchical Data Prefetching Engine (HDFE) — §4.4.2.
//
// Serves block reads. A hit in a prefetching cache reads from the fast
// device; a miss reads from the PFS and triggers prefetching of the next
// `prefetch_depth` blocks into a cache target. The Hermes-default
// round-robin policy can pick a full cache, forcing evictions that later
// cause data stalls; the Apollo-informed policy picks caches with enough
// monitored remaining capacity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "middleware/hdpe.h"
#include "middleware/tiers.h"

namespace apollo::middleware {

enum class PrefetchPolicy { kNoPrefetch, kRoundRobin, kCapacityAware };

const char* PrefetchPolicyName(PrefetchPolicy policy);

class Hdfe {
 public:
  // `caches`: fast targets used as prefetching caches (e.g. NVMe tier).
  // `pfs`: the backing store every miss reads from.
  Hdfe(std::vector<BufferingTarget> caches, std::vector<BufferingTarget> pfs,
       PrefetchPolicy policy, std::uint64_t block_bytes,
       CapacityFn capacity = {}, int prefetch_depth = 4);

  // Reads one block; returns completion time.
  Expected<TimeNs> ReadBlock(std::uint64_t block_id, TimeNs now);

  // Stages `count` blocks starting at `first_block` into the caches (the
  // sequential-prefetch hint issued during an application's compute
  // phase). No-op for kNoPrefetch.
  void StageAhead(std::uint64_t first_block, int count, TimeNs now);

  const EngineStats& stats() const { return stats_; }
  std::uint64_t CacheHits() const { return hits_; }
  std::uint64_t CacheMisses() const { return misses_; }

 private:
  struct CacheState {
    BufferingTarget target;
    std::unordered_set<std::uint64_t> blocks;
  };

  // Inserts a block into a cache chosen by policy; may evict.
  void PrefetchBlock(std::uint64_t block_id, TimeNs now);
  CacheState* PickCache(std::uint64_t bytes);
  CacheState* FindHolder(std::uint64_t block_id);

  std::vector<CacheState> caches_;
  std::vector<BufferingTarget> pfs_;
  PrefetchPolicy policy_;
  std::uint64_t block_bytes_;
  CapacityFn capacity_;
  int prefetch_depth_;
  std::size_t rr_cursor_ = 0;
  std::size_t pfs_cursor_ = 0;
  EngineStats stats_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace apollo::middleware
