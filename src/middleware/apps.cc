#include "middleware/apps.h"

#include <algorithm>

namespace apollo::middleware {

AppReport RunVpicIo(Hdpe& engine, const AppConfig& config, TimeNs start) {
  AppReport report;
  TimeNs now = start;
  for (int step = 0; step < config.steps; ++step) {
    TimeNs step_end = now;
    for (int proc = 0; proc < config.procs; ++proc) {
      auto end = engine.Write(config.bytes_per_proc, now);
      if (!end.ok()) {
        ++report.errors;
        continue;
      }
      step_end = std::max(step_end, *end);
    }
    now = step_end;
  }
  report.io_time = now - start;
  report.engine = engine.stats();
  return report;
}

AppReport RunMontage(Hdfe& engine, const AppConfig& config, TimeNs start) {
  AppReport report;
  TimeNs now = start;
  TimeNs compute_total = 0;
  std::uint64_t next_block = 0;
  for (int step = 0; step < config.steps; ++step) {
    TimeNs step_end = now;
    for (int proc = 0; proc < config.procs; ++proc) {
      auto end = engine.ReadBlock(next_block++, now);
      if (!end.ok()) {
        ++report.errors;
        continue;
      }
      step_end = std::max(step_end, *end);
    }
    now = step_end;
    if (config.compute_per_step > 0 && step + 1 < config.steps) {
      // Compute phase: the prefetcher stages the upcoming blocks while the
      // application crunches (devices drain their queues meanwhile).
      engine.StageAhead(next_block, config.procs, now);
      now += config.compute_per_step;
      compute_total += config.compute_per_step;
    }
  }
  report.io_time = now - start - compute_total;
  report.engine = engine.stats();
  return report;
}

AppReport RunVpicThenBdcats(Hdre& engine, const AppConfig& config,
                            AppReport* read_report, TimeNs start) {
  AppReport write_report;
  TimeNs now = start;
  const NodeId writer = 0;
  for (int step = 0; step < config.steps; ++step) {
    TimeNs step_end = now;
    for (int proc = 0; proc < config.procs; ++proc) {
      auto end = engine.Write(config.bytes_per_proc, writer, now);
      if (!end.ok()) {
        ++write_report.errors;
        continue;
      }
      step_end = std::max(step_end, *end);
    }
    now = step_end;
  }
  write_report.io_time = now - start;
  write_report.engine = engine.stats();

  if (read_report != nullptr) {
    const TimeNs read_start = now;
    for (int step = 0; step < config.steps; ++step) {
      TimeNs step_end = now;
      for (int proc = 0; proc < config.procs; ++proc) {
        auto end = engine.Read(config.bytes_per_proc, writer, now);
        if (!end.ok()) {
          ++read_report->errors;
          continue;
        }
        step_end = std::max(step_end, *end);
      }
      now = step_end;
    }
    read_report->io_time = now - read_start;
    read_report->engine = engine.stats();
  }
  return write_report;
}

}  // namespace apollo::middleware
