// Hierarchical Data Replication Engine (HDRE) — §4.4.2.
//
// Writes place `replication_factor` replicas into a replication set (a
// group of buffering targets). The Hermes-default round-robin policy can
// pick sets without room or with poor network proximity, causing data
// stalls; the Apollo-informed policy ranks sets by monitored remaining
// capacity and network latency to the writer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "middleware/hdpe.h"
#include "middleware/tiers.h"

namespace apollo::middleware {

enum class ReplicationPolicy { kRoundRobin, kApolloAware };

const char* ReplicationPolicyName(ReplicationPolicy policy);

struct ReplicationSet {
  std::vector<BufferingTarget> targets;
};

// Latency oracle from the writer's node to a target's node (ns). Used by
// the Apollo-aware policy (Network Health curation).
using LatencyFn = std::function<TimeNs(NodeId writer, NodeId target)>;

class Hdre {
 public:
  Hdre(std::vector<ReplicationSet> sets, ReplicationPolicy policy,
       int replication_factor, CapacityFn capacity = {},
       LatencyFn latency = {});

  // Writes one object with full replication; returns when the last replica
  // lands.
  Expected<TimeNs> Write(std::uint64_t bytes, NodeId writer, TimeNs now);

  // Reads one object: picks the fastest replica holder. Replication makes
  // reads cheaper by spreading load.
  Expected<TimeNs> Read(std::uint64_t bytes, NodeId reader, TimeNs now);

  const EngineStats& stats() const { return stats_; }

 private:
  std::size_t PickSet(std::uint64_t bytes, NodeId writer);

  std::vector<ReplicationSet> sets_;
  ReplicationPolicy policy_;
  int replication_factor_;
  CapacityFn capacity_;
  LatencyFn latency_;
  std::size_t rr_cursor_ = 0;
  std::size_t read_cursor_ = 0;
  EngineStats stats_;
};

}  // namespace apollo::middleware
