// HCompress-style hierarchical compression engine.
//
// §4.4.1 uses "an HCompress middleware library use-case which requires I/O
// information" as the client of both monitoring services. HCompress
// (Devarajan et al., IPDPS'20) selects a compression library per storage
// tier: fast-but-light compression for fast tiers, heavy compression for
// slow tiers, trading CPU time against transfer volume.
//
// This engine reproduces that decision problem: each write picks a target
// tier (greedy by capacity, like the HDPE) and then a compression level
// whose CPU cost + compressed transfer time minimizes the total, using the
// device's *monitored* bandwidth and capacity. A static policy always uses
// one level; the Apollo-aware policy re-optimizes from live telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "middleware/hdpe.h"
#include "middleware/tiers.h"

namespace apollo::middleware {

struct CompressionLevel {
  std::string name;
  double ratio;           // output_bytes = bytes * ratio (<= 1)
  double cpu_bytes_per_s; // compression throughput on one core
};

// A small library of levels modeled on the lz4/zstd/bzip2 spectrum.
std::vector<CompressionLevel> DefaultCompressionLevels();

enum class CompressionPolicy {
  kNone,        // store raw
  kStatic,      // always the same level (HCompress default w/o telemetry)
  kApolloAware, // choose the level minimizing cpu + transfer per write
};

const char* CompressionPolicyName(CompressionPolicy policy);

// Provides the monitored (possibly slightly stale) bandwidth estimate for
// a target; nullopt falls back to the device spec's max bandwidth.
using BandwidthFn =
    std::function<std::optional<double>(const BufferingTarget& target)>;

struct HcompressStats {
  std::uint64_t requests = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;
  TimeNs cpu_time = 0;
  TimeNs io_time = 0;

  double CompressionRatio() const {
    return requests == 0 ? 1.0
                         : static_cast<double>(stored_bytes) /
                               static_cast<double>(raw_bytes);
  }
};

class Hcompress {
 public:
  Hcompress(std::vector<TierSet> tiers, CompressionPolicy policy,
            CapacityFn capacity = {}, BandwidthFn bandwidth = {},
            std::vector<CompressionLevel> levels =
                DefaultCompressionLevels(),
            std::size_t static_level = 0);

  // Compresses (per policy) and stores one buffer; returns completion time
  // including compression CPU time.
  Expected<TimeNs> Write(std::uint64_t bytes, TimeNs now);

  const HcompressStats& stats() const { return stats_; }
  CompressionPolicy policy() const { return policy_; }

  // Exposed for tests: the level the policy would pick for a target now.
  std::size_t ChooseLevel(const BufferingTarget& target,
                          std::uint64_t bytes) const;

 private:
  std::vector<TierSet> tiers_;
  CompressionPolicy policy_;
  CapacityFn capacity_;
  BandwidthFn bandwidth_;
  std::vector<CompressionLevel> levels_;
  std::size_t static_level_;
  std::vector<std::size_t> rr_cursor_;
  HcompressStats stats_;
};

}  // namespace apollo::middleware
