// Storage-tier views for hierarchical middleware engines.
//
// Mirrors the §4.4 test setup: four layers — local memory, local NVMe, a
// shared Burst Buffer over SSDs, and a Parallel File System over HDDs.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace apollo::middleware {

struct BufferingTarget {
  Device* device = nullptr;
  NodeId node = kLocalNode;
  std::string name;
};

struct TierSet {
  std::string name;
  int rank = 0;  // 0 = fastest
  std::vector<BufferingTarget> targets;

  bool empty() const { return targets.empty(); }
};

// Builds the four-layer hierarchy from an Ares-like cluster:
//   rank 0: compute-node RAM, rank 1: compute-node NVMe,
//   rank 2: storage-node SSD (burst buffer), rank 3: storage-node HDD (PFS).
std::vector<TierSet> BuildHermesTiers(const Cluster& cluster);

// How an engine learns a target's remaining capacity:
//  - a null function models the default round-robin engines (no capacity
//    knowledge: they write blindly and pay for failures);
//  - an Apollo-backed function returns the monitored value, which is as
//    fresh as the adaptive interval allows.
using CapacityFn =
    std::function<std::optional<double>(const BufferingTarget& target)>;

// Capacity function that reads the device directly (oracle; used in tests).
CapacityFn DirectCapacityFn();

}  // namespace apollo::middleware
