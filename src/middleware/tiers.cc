#include "middleware/tiers.h"

namespace apollo::middleware {

std::vector<TierSet> BuildHermesTiers(const Cluster& cluster) {
  std::vector<TierSet> tiers(4);
  tiers[0].name = "memory";
  tiers[0].rank = 0;
  tiers[1].name = "nvme";
  tiers[1].rank = 1;
  tiers[2].name = "burst_buffer";
  tiers[2].rank = 2;
  tiers[3].name = "pfs";
  tiers[3].rank = 3;

  for (Node* node : cluster.ComputeNodes()) {
    for (const auto& device : node->devices()) {
      if (device->spec().type == DeviceType::kRam) {
        tiers[0].targets.push_back(
            BufferingTarget{device.get(), node->id(), device->name()});
      } else if (device->spec().type == DeviceType::kNvme) {
        tiers[1].targets.push_back(
            BufferingTarget{device.get(), node->id(), device->name()});
      }
    }
  }
  for (Node* node : cluster.StorageNodes()) {
    for (const auto& device : node->devices()) {
      if (device->spec().type == DeviceType::kSsd) {
        tiers[2].targets.push_back(
            BufferingTarget{device.get(), node->id(), device->name()});
      } else if (device->spec().type == DeviceType::kHdd) {
        tiers[3].targets.push_back(
            BufferingTarget{device.get(), node->id(), device->name()});
      }
    }
  }
  return tiers;
}

CapacityFn DirectCapacityFn() {
  return [](const BufferingTarget& target) -> std::optional<double> {
    return static_cast<double>(target.device->RemainingBytes());
  };
}

}  // namespace apollo::middleware
