#include "middleware/hdre.h"

#include <algorithm>
#include <limits>

namespace apollo::middleware {

const char* ReplicationPolicyName(ReplicationPolicy policy) {
  switch (policy) {
    case ReplicationPolicy::kRoundRobin:
      return "round_robin";
    case ReplicationPolicy::kApolloAware:
      return "apollo_aware";
  }
  return "?";
}

Hdre::Hdre(std::vector<ReplicationSet> sets, ReplicationPolicy policy,
           int replication_factor, CapacityFn capacity, LatencyFn latency)
    : sets_(std::move(sets)),
      policy_(policy),
      replication_factor_(replication_factor),
      capacity_(std::move(capacity)),
      latency_(std::move(latency)) {}

std::size_t Hdre::PickSet(std::uint64_t bytes, NodeId writer) {
  if (policy_ == ReplicationPolicy::kRoundRobin) {
    const std::size_t pick = rr_cursor_ % sets_.size();
    ++rr_cursor_;
    return pick;
  }
  // Apollo-aware: cycle the sets like round-robin (preserving write
  // parallelism) but skip sets whose monitored remaining capacity cannot
  // hold the replicas; among the fitting candidates at this cursor
  // position, prefer lower network latency to the writer.
  std::optional<std::size_t> best;
  TimeNs best_latency = std::numeric_limits<TimeNs>::max();
  for (std::size_t probe = 0; probe < sets_.size(); ++probe) {
    const std::size_t s = (rr_cursor_ + probe) % sets_.size();
    double min_remaining = std::numeric_limits<double>::infinity();
    TimeNs total_latency = 0;
    for (const BufferingTarget& target : sets_[s].targets) {
      ++stats_.capacity_queries;
      const std::optional<double> remaining =
          capacity_ ? capacity_(target)
                    : std::optional<double>(static_cast<double>(
                          target.device->RemainingBytes()));
      min_remaining = std::min(min_remaining, remaining.value_or(0.0));
      if (latency_) total_latency += latency_(writer, target.node);
    }
    if (min_remaining < static_cast<double>(bytes)) continue;
    if (!best.has_value()) {
      best = s;
      best_latency = total_latency;
      if (!latency_) break;  // no latency signal: plain capacity filter
    } else if (total_latency * 2 < best_latency) {
      // Divert from cursor order only for a dramatically closer set
      // (a set "too remote from the source", §4.4.2).
      best = s;
      best_latency = total_latency;
    }
  }
  if (!best.has_value()) {
    // Nothing (believed) fits; fall back to round-robin.
    const std::size_t pick = rr_cursor_ % sets_.size();
    ++rr_cursor_;
    return pick;
  }
  ++rr_cursor_;
  return *best;
}

Expected<TimeNs> Hdre::Write(std::uint64_t bytes, NodeId writer, TimeNs now) {
  ++stats_.requests;
  stats_.bytes += bytes * static_cast<std::uint64_t>(replication_factor_);

  const std::size_t set_index = PickSet(bytes, writer);
  ReplicationSet& set = sets_[set_index];
  TimeNs last_end = now;
  int placed = 0;
  for (std::size_t i = 0;
       i < set.targets.size() && placed < replication_factor_; ++i) {
    BufferingTarget& target = set.targets[i];
    auto write = target.device->Write(bytes, now);
    if (!write.ok()) {
      // Set out of space: data stall, drain the target and retry once.
      ++stats_.stalls;
      const std::uint64_t drain = target.device->UsedBytes() / 2;
      if (drain > 0) {
        target.device->Free(drain);
        const TimeNs penalty =
            static_cast<TimeNs>(static_cast<double>(drain) /
                                target.device->MaxBandwidth() * 1e9);
        stats_.stall_time += penalty;
        write = target.device->Write(bytes, now + penalty);
      }
      if (!write.ok()) continue;
    }
    last_end = std::max(last_end, write->end);
    ++placed;
  }
  if (placed == 0) {
    return Error(ErrorCode::kResourceExhausted,
                 "replication set cannot hold any replica");
  }
  stats_.io_time += last_end - now;
  return last_end;
}

Expected<TimeNs> Hdre::Read(std::uint64_t bytes, NodeId reader, TimeNs now) {
  ++stats_.requests;
  stats_.bytes += bytes;
  // Spread reads over replicas: with R replicas the per-device queueing is
  // 1/R of the single-copy case. Cycle replica holders.
  std::size_t set_index = read_cursor_ % sets_.size();
  ReplicationSet& set = sets_[set_index];
  const std::size_t target_index =
      (read_cursor_ / sets_.size()) %
      std::max<std::size_t>(1, std::min<std::size_t>(
                                   set.targets.size(),
                                   static_cast<std::size_t>(
                                       replication_factor_)));
  ++read_cursor_;
  BufferingTarget& target = set.targets[target_index];
  auto read = target.device->Read(bytes, now);
  if (!read.ok()) return read.error();
  stats_.io_time += read->end - now;
  (void)reader;
  return read->end;
}

}  // namespace apollo::middleware
