#include "middleware/hdfe.h"

namespace apollo::middleware {

const char* PrefetchPolicyName(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::kNoPrefetch:
      return "pfs_only";
    case PrefetchPolicy::kRoundRobin:
      return "round_robin";
    case PrefetchPolicy::kCapacityAware:
      return "apollo_capacity_aware";
  }
  return "?";
}

Hdfe::Hdfe(std::vector<BufferingTarget> caches,
           std::vector<BufferingTarget> pfs, PrefetchPolicy policy,
           std::uint64_t block_bytes, CapacityFn capacity, int prefetch_depth)
    : pfs_(std::move(pfs)),
      policy_(policy),
      block_bytes_(block_bytes),
      capacity_(std::move(capacity)),
      prefetch_depth_(prefetch_depth) {
  caches_.reserve(caches.size());
  for (auto& target : caches) {
    caches_.push_back(CacheState{std::move(target), {}});
  }
}

Hdfe::CacheState* Hdfe::FindHolder(std::uint64_t block_id) {
  for (CacheState& cache : caches_) {
    if (cache.blocks.count(block_id) > 0) return &cache;
  }
  return nullptr;
}

Expected<TimeNs> Hdfe::ReadBlock(std::uint64_t block_id, TimeNs now) {
  ++stats_.requests;
  stats_.bytes += block_bytes_;

  if (policy_ != PrefetchPolicy::kNoPrefetch) {
    if (CacheState* holder = FindHolder(block_id)) {
      ++hits_;
      auto read = holder->target.device->Read(block_bytes_, now);
      if (!read.ok()) return read.error();
      // Streaming consumption: a prefetched block is read once, then its
      // cache slot is recycled.
      holder->blocks.erase(block_id);
      holder->target.device->Free(block_bytes_);
      stats_.io_time += read->end - now;
      return read->end;
    }
    ++misses_;
    ++stats_.stalls;  // data stall: the block was not resident
  }

  // Read from PFS.
  BufferingTarget& backing = pfs_[pfs_cursor_ % pfs_.size()];
  ++pfs_cursor_;
  auto read = backing.device->Read(block_bytes_, now);
  if (!read.ok()) return read.error();
  stats_.io_time += read->end - now;

  if (policy_ != PrefetchPolicy::kNoPrefetch) {
    for (int d = 1; d <= prefetch_depth_; ++d) {
      PrefetchBlock(block_id + static_cast<std::uint64_t>(d), read->end);
    }
  }
  return read->end;
}

void Hdfe::StageAhead(std::uint64_t first_block, int count, TimeNs now) {
  if (policy_ == PrefetchPolicy::kNoPrefetch) return;
  for (int i = 0; i < count; ++i) {
    PrefetchBlock(first_block + static_cast<std::uint64_t>(i), now);
  }
}

Hdfe::CacheState* Hdfe::PickCache(std::uint64_t bytes) {
  if (caches_.empty()) return nullptr;
  if (policy_ == PrefetchPolicy::kRoundRobin) {
    CacheState* cache = &caches_[rr_cursor_ % caches_.size()];
    ++rr_cursor_;
    return cache;
  }
  // Capacity-aware: round-robin over caches, skipping those whose
  // monitored remaining capacity cannot hold the block.
  for (std::size_t probe = 0; probe < caches_.size(); ++probe) {
    CacheState& cache = caches_[(rr_cursor_ + probe) % caches_.size()];
    ++stats_.capacity_queries;
    const std::optional<double> remaining =
        capacity_ ? capacity_(cache.target)
                  : std::optional<double>(static_cast<double>(
                        cache.target.device->RemainingBytes()));
    if (!remaining.has_value()) continue;
    if (*remaining >= static_cast<double>(bytes)) {
      rr_cursor_ = (rr_cursor_ + probe + 1) % caches_.size();
      return &cache;
    }
  }
  return nullptr;  // every cache (believed) full -> skip prefetch
}

void Hdfe::PrefetchBlock(std::uint64_t block_id, TimeNs now) {
  if (FindHolder(block_id) != nullptr) return;  // already resident
  CacheState* cache = PickCache(block_bytes_);
  if (cache == nullptr) return;

  if (cache->target.device->RemainingBytes() < block_bytes_) {
    // Unnecessary eviction: round-robin landed on a full cache. Evict one
    // resident block to make room (it may be re-read later -> future
    // stall).
    if (!cache->blocks.empty()) {
      const std::uint64_t victim = *cache->blocks.begin();
      cache->blocks.erase(victim);
      cache->target.device->Free(block_bytes_);
      ++stats_.evictions;
    } else {
      return;  // full of foreign data; nothing to evict
    }
  }

  // Stage PFS -> cache (cost accrues to the devices, not the reader).
  BufferingTarget& backing = pfs_[pfs_cursor_ % pfs_.size()];
  ++pfs_cursor_;
  auto read = backing.device->Read(block_bytes_, now);
  const TimeNs staged = read.ok() ? read->end : now;
  auto write = cache->target.device->Write(block_bytes_, staged);
  if (write.ok()) cache->blocks.insert(block_id);
}

}  // namespace apollo::middleware
