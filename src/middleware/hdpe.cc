#include "middleware/hdpe.h"

#include <algorithm>

namespace apollo::middleware {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kPfsOnly:
      return "pfs_only";
    case PlacementPolicy::kRoundRobin:
      return "round_robin";
    case PlacementPolicy::kCapacityAware:
      return "apollo_capacity_aware";
  }
  return "?";
}

Hdpe::Hdpe(std::vector<TierSet> tiers, PlacementPolicy policy,
           CapacityFn capacity)
    : tiers_(std::move(tiers)),
      policy_(policy),
      capacity_(std::move(capacity)),
      rr_cursor_(tiers_.size(), 0) {}

Expected<TimeNs> Hdpe::Write(std::uint64_t bytes, TimeNs now) {
  ++stats_.requests;
  stats_.bytes += bytes;

  if (policy_ == PlacementPolicy::kPfsOnly) {
    TierSet& pfs = tiers_.back();
    std::size_t& cursor = rr_cursor_.back();
    BufferingTarget& target = pfs.targets[cursor % pfs.targets.size()];
    ++cursor;
    return WriteToTarget(target, bytes, now, tiers_.size() - 1);
  }

  // Greedy: fastest tier first (skip the memory tier for durability —
  // Hermes buffers in NVMe and below for these workloads).
  for (std::size_t t = 1; t < tiers_.size(); ++t) {
    TierSet& tier = tiers_[t];
    if (tier.empty()) continue;

    if (policy_ == PlacementPolicy::kRoundRobin) {
      std::size_t& cursor = rr_cursor_[t];
      BufferingTarget& target = tier.targets[cursor % tier.targets.size()];
      ++cursor;
      // Round-robin writes blindly; a full target costs a flush + stall,
      // then the write proceeds on the drained target.
      auto first_try = target.device->RemainingBytes();
      if (first_try < bytes) {
        if (t + 1 < tiers_.size()) {
          const TimeNs flush_end = Flush(target, t, now);
          ++stats_.flushes;
          ++stats_.stalls;
          stats_.stall_time += flush_end - now;
          return WriteToTarget(target, bytes, flush_end, t);
        }
        continue;  // last tier full: fall through (wraps to PFS next loop)
      }
      return WriteToTarget(target, bytes, now, t);
    }

    // Capacity-aware: round-robin over the tier but skip targets whose
    // *monitored* remaining capacity cannot fit the request — keeping the
    // parallelism of round-robin while avoiding the flushes ("data is
    // placed into buffering targets that have enough capacity", §4.4.2).
    BufferingTarget* best = nullptr;
    std::size_t& cursor = rr_cursor_[t];
    for (std::size_t probe = 0; probe < tier.targets.size(); ++probe) {
      BufferingTarget& target =
          tier.targets[(cursor + probe) % tier.targets.size()];
      ++stats_.capacity_queries;
      const std::optional<double> remaining =
          capacity_ ? capacity_(target)
                    : std::optional<double>(
                          static_cast<double>(target.device->RemainingBytes()));
      if (!remaining.has_value()) continue;
      if (*remaining >= static_cast<double>(bytes)) {
        best = &target;
        cursor = (cursor + probe + 1) % tier.targets.size();
        break;
      }
    }
    if (best == nullptr) continue;  // tier (believed) full -> next tier
    auto result = WriteToTarget(*best, bytes, now, t);
    if (result.ok()) return result;
    // Monitored value was stale and the target was actually full: pay a
    // stall and retry on the next tier.
    ++stats_.stalls;
  }

  return Error(ErrorCode::kResourceExhausted,
               "no tier can absorb the request");
}

Expected<TimeNs> Hdpe::WriteToTarget(BufferingTarget& target,
                                     std::uint64_t bytes, TimeNs now,
                                     std::size_t tier_index) {
  auto result = target.device->Write(bytes, now);
  if (!result.ok()) {
    // Actual capacity miss (stale knowledge): flush then retry once.
    if (tier_index + 1 < tiers_.size()) {
      const TimeNs flush_end = Flush(target, tier_index, now);
      ++stats_.flushes;
      stats_.stall_time += flush_end - now;
      auto retry = target.device->Write(bytes, flush_end);
      if (!retry.ok()) return retry.error();
      stats_.io_time += retry->end - now;
      return retry->end;
    }
    return result.error();
  }
  stats_.io_time += result->end - now;
  return result->end;
}

TimeNs Hdpe::Flush(BufferingTarget& target, std::size_t tier_index,
                   TimeNs now) {
  // Drain a bounded flush unit (Hermes flushes buffered blobs in chunks,
  // not whole devices) into one target of the next tier.
  constexpr std::uint64_t kFlushUnit = 256ULL << 20;
  const std::uint64_t drain_bytes =
      std::min<std::uint64_t>(target.device->UsedBytes() / 2, kFlushUnit);
  if (drain_bytes == 0) return now;
  TimeNs end = now;
  if (tier_index + 1 < tiers_.size() && !tiers_[tier_index + 1].empty()) {
    TierSet& next = tiers_[tier_index + 1];
    std::size_t& cursor = rr_cursor_[tier_index + 1];
    BufferingTarget& sink = next.targets[cursor % next.targets.size()];
    ++cursor;
    auto read = target.device->Read(drain_bytes, now);
    if (read.ok()) end = read->end;
    auto write = sink.device->Write(drain_bytes, end);
    if (write.ok()) {
      end = write->end;
    } else {
      // Next tier also full: drop to modeling just the read-out cost.
      sink.device->Free(sink.device->UsedBytes() / 2);
    }
  }
  target.device->Free(drain_bytes);
  return end;
}

}  // namespace apollo::middleware
