// Application I/O kernels (§4.4.2).
//
//  - VPIC-IO: particle simulation writer — 32MB per process per time step,
//    16 steps.
//  - Montage: astronomical mosaic engine — reads 10MB per process per step,
//    16 steps.
//  - BD-CATS: clustering — reads back the data VPIC produced.
//
// Processes within a step issue concurrently (requests submitted at the
// step's start; device occupancy serializes them); steps are bulk-
// synchronous. All times are virtual.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "middleware/hdfe.h"
#include "middleware/hdpe.h"
#include "middleware/hdre.h"

namespace apollo::middleware {

struct AppConfig {
  int procs = 2560;
  std::uint64_t bytes_per_proc = 32ULL << 20;
  int steps = 16;
  // Compute phase between I/O steps. Prefetching engines stage the next
  // step's data during this window; it is excluded from reported io_time.
  TimeNs compute_per_step = 0;
};

struct AppReport {
  TimeNs io_time = 0;       // end-to-end I/O wall time across all steps
  std::uint64_t errors = 0;
  EngineStats engine;
};

// VPIC-IO writes through a placement engine.
AppReport RunVpicIo(Hdpe& engine, const AppConfig& config, TimeNs start = 0);

// Montage reads sequential blocks through a prefetching engine.
AppReport RunMontage(Hdfe& engine, const AppConfig& config, TimeNs start = 0);

// VPIC writes + BD-CATS reads through a replication engine. Returns the
// write report; `read_report` receives the BD-CATS phase.
AppReport RunVpicThenBdcats(Hdre& engine, const AppConfig& config,
                            AppReport* read_report, TimeNs start = 0);

}  // namespace apollo::middleware
