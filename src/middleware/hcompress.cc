#include "middleware/hcompress.h"

#include <algorithm>
#include <limits>

namespace apollo::middleware {

std::vector<CompressionLevel> DefaultCompressionLevels() {
  return {
      {"none", 1.00, 0.0},     // ratio 1, free
      {"lz4", 0.60, 700e6},    // light & fast
      {"zstd", 0.45, 250e6},   // balanced
      {"bzip2", 0.35, 15e6},   // heavy & slow
  };
}

const char* CompressionPolicyName(CompressionPolicy policy) {
  switch (policy) {
    case CompressionPolicy::kNone:
      return "none";
    case CompressionPolicy::kStatic:
      return "static";
    case CompressionPolicy::kApolloAware:
      return "apollo_aware";
  }
  return "?";
}

Hcompress::Hcompress(std::vector<TierSet> tiers, CompressionPolicy policy,
                     CapacityFn capacity, BandwidthFn bandwidth,
                     std::vector<CompressionLevel> levels,
                     std::size_t static_level)
    : tiers_(std::move(tiers)),
      policy_(policy),
      capacity_(std::move(capacity)),
      bandwidth_(std::move(bandwidth)),
      levels_(std::move(levels)),
      static_level_(std::min(static_level, levels_.size() - 1)),
      rr_cursor_(tiers_.size(), 0) {}

std::size_t Hcompress::ChooseLevel(const BufferingTarget& target,
                                   std::uint64_t bytes) const {
  if (policy_ == CompressionPolicy::kNone) return 0;
  if (policy_ == CompressionPolicy::kStatic) return static_level_;

  // Apollo-aware: minimize cpu_time + transfer_time using the monitored
  // bandwidth of the target device.
  const std::optional<double> monitored =
      bandwidth_ ? bandwidth_(target) : std::nullopt;
  // The relevant figure is the bandwidth this write will see: the device's
  // ceiling minus the load others put on it (monitored real bandwidth).
  const double ceiling = target.device->MaxBandwidth();
  double available = ceiling;
  if (monitored.has_value()) {
    available = std::max(ceiling - *monitored, ceiling * 0.05);
  }

  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    const CompressionLevel& cl = levels_[level];
    const double cpu_s =
        cl.cpu_bytes_per_s > 0.0
            ? static_cast<double>(bytes) / cl.cpu_bytes_per_s
            : 0.0;
    const double io_s =
        static_cast<double>(bytes) * cl.ratio / available;
    const double cost = cpu_s + io_s;
    if (cost < best_cost) {
      best_cost = cost;
      best = level;
    }
  }
  return best;
}

Expected<TimeNs> Hcompress::Write(std::uint64_t bytes, TimeNs now) {
  ++stats_.requests;
  stats_.raw_bytes += bytes;

  // Greedy tier selection (skip memory tier), capacity-filtered round
  // robin like the HDPE.
  for (std::size_t t = 1; t < tiers_.size(); ++t) {
    TierSet& tier = tiers_[t];
    if (tier.empty()) continue;
    std::size_t& cursor = rr_cursor_[t];
    BufferingTarget* chosen = nullptr;
    for (std::size_t probe = 0; probe < tier.targets.size(); ++probe) {
      BufferingTarget& target =
          tier.targets[(cursor + probe) % tier.targets.size()];
      const std::optional<double> remaining =
          capacity_ ? capacity_(target)
                    : std::optional<double>(static_cast<double>(
                          target.device->RemainingBytes()));
      if (remaining.value_or(0.0) >= static_cast<double>(bytes)) {
        chosen = &target;
        cursor = (cursor + probe + 1) % tier.targets.size();
        break;
      }
    }
    if (chosen == nullptr) continue;

    const std::size_t level = ChooseLevel(*chosen, bytes);
    const CompressionLevel& cl = levels_[level];
    const std::uint64_t stored = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * cl.ratio);
    const TimeNs cpu =
        cl.cpu_bytes_per_s > 0.0
            ? static_cast<TimeNs>(static_cast<double>(bytes) /
                                  cl.cpu_bytes_per_s * 1e9)
            : 0;

    auto written = chosen->device->Write(std::max<std::uint64_t>(stored, 1),
                                         now + cpu);
    if (!written.ok()) continue;  // stale view: try the next tier
    stats_.stored_bytes += stored;
    stats_.cpu_time += cpu;
    stats_.io_time += written->end - now;
    return written->end;
  }
  return Error(ErrorCode::kResourceExhausted,
               "no tier can absorb the compressed write");
}

}  // namespace apollo::middleware
