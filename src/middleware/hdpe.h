// Hierarchical Data Placement Engine (HDPE) — §4.4.2.
//
// Accepts write requests and greedily places data in the fastest non-full
// tier. Within a tier:
//  - round-robin (the Hermes default) cycles targets blindly; a full target
//    forces a flush (drain half the target into the next tier, paying its
//    bandwidth) plus a data stall;
//  - capacity-aware (Apollo-informed) consults the monitored remaining
//    capacity and picks the emptiest target with room, avoiding flushes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "middleware/tiers.h"

namespace apollo::middleware {

enum class PlacementPolicy { kPfsOnly, kRoundRobin, kCapacityAware };

const char* PlacementPolicyName(PlacementPolicy policy);

struct EngineStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t flushes = 0;
  std::uint64_t stalls = 0;
  std::uint64_t evictions = 0;
  TimeNs io_time = 0;       // summed request service time
  TimeNs stall_time = 0;    // extra time lost to flushes/evictions
  std::uint64_t capacity_queries = 0;
};

class Hdpe {
 public:
  // `capacity` may be empty for kPfsOnly/kRoundRobin.
  Hdpe(std::vector<TierSet> tiers, PlacementPolicy policy,
       CapacityFn capacity = {});

  // Places a write; returns its completion time. `now` is virtual time.
  Expected<TimeNs> Write(std::uint64_t bytes, TimeNs now);

  const EngineStats& stats() const { return stats_; }
  PlacementPolicy policy() const { return policy_; }
  const std::vector<TierSet>& tiers() const { return tiers_; }

 private:
  Expected<TimeNs> WriteToTarget(BufferingTarget& target,
                                 std::uint64_t bytes, TimeNs now,
                                 std::size_t tier_index);
  // Drains half of `target` into the next tier; returns the drain end time.
  TimeNs Flush(BufferingTarget& target, std::size_t tier_index, TimeNs now);

  std::vector<TierSet> tiers_;
  PlacementPolicy policy_;
  CapacityFn capacity_;
  std::vector<std::size_t> rr_cursor_;  // per tier
  EngineStats stats_;
};

}  // namespace apollo::middleware
