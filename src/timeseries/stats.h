// Accuracy metrics and rolling statistics for telemetry series.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace apollo {

double Mean(const std::vector<double>& xs);
double Variance(const std::vector<double>& xs);  // population variance

// Mean absolute error between prediction and truth (equal lengths; empty
// inputs return 0).
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred);
double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& pred);
double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& pred);

// Coefficient of determination. A constant truth series returns 1 when the
// prediction matches exactly, else 0.
double RSquared(const std::vector<double>& truth,
                const std::vector<double>& pred);

// Fixed-window rolling mean used by the complex (adaptive-parameterized)
// AIMD controller: tracks the rolling average of metric *changes*.
class RollingMean {
 public:
  explicit RollingMean(std::size_t window);

  void Add(double x);
  double Value() const;  // 0 until the first sample
  std::size_t Count() const { return values_.size(); }
  std::size_t Window() const { return window_; }
  bool Full() const { return values_.size() == window_; }
  void Reset();

 private:
  std::size_t window_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

}  // namespace apollo
