// Synthetic time-series feature generators.
//
// The paper (§3.4.2, citing Lin et al.'s taxonomy of time-series patterns)
// decomposes telemetry series into eight key features; Delphi pre-trains one
// tiny model per feature on synthetic data generated here, then stacks them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "timeseries/series.h"

namespace apollo {

// The eight time-series feature archetypes.
enum class TsFeature : int {
  kTrend = 0,        // linear/monotone drift
  kSeasonal = 1,     // fixed-period sinusoid
  kCyclic = 2,       // slowly modulated oscillation (non-fixed period)
  kLevelShift = 3,   // abrupt change in mean
  kVarianceShift = 4,  // abrupt change in spread
  kSpikes = 5,       // sparse impulses over a flat base
  kRandomWalk = 6,   // integrated noise
  kStep = 7,         // discrete bouncing between level groups
};

constexpr int kNumTsFeatures = 8;

const char* TsFeatureName(TsFeature feature);
std::vector<TsFeature> AllTsFeatures();

struct GeneratorConfig {
  std::size_t length = 2048;
  double noise_stddev = 0.01;  // white noise mixed into every feature
  std::uint64_t seed = 42;
};

// Generates one series exhibiting exactly one feature (plus light noise).
// Values are roughly within [0, 1].
Series GenerateFeature(TsFeature feature, const GeneratorConfig& config);

// A composite series mixing several features — the training set for
// Delphi's trainable combiner layer and the "synthetic test dataset" of
// §3.4.2. `weights` must have kNumTsFeatures entries (zero drops a feature).
Series GenerateComposite(const std::vector<double>& weights,
                         const GeneratorConfig& config);

// Convenience: equal-weight composite of all features.
Series GenerateCompositeAll(const GeneratorConfig& config);

}  // namespace apollo
