#include "timeseries/stats.h"

#include <cassert>
#include <cmath>

namespace apollo {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size());
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    sum += std::fabs(truth[i] - pred[i]);
  }
  return sum / static_cast<double>(truth.size());
}

double MeanSquaredError(const std::vector<double>& truth,
                        const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double RootMeanSquaredError(const std::vector<double>& truth,
                            const std::vector<double>& pred) {
  return std::sqrt(MeanSquaredError(truth, pred));
}

double RSquared(const std::vector<double>& truth,
                const std::vector<double>& pred) {
  assert(truth.size() == pred.size());
  if (truth.empty()) return 0.0;
  const double var = Variance(truth);
  const double mse = MeanSquaredError(truth, pred);
  if (var <= 0.0) return mse <= 0.0 ? 1.0 : 0.0;
  return 1.0 - mse / var;
}

RollingMean::RollingMean(std::size_t window)
    : window_(window == 0 ? 1 : window) {}

void RollingMean::Add(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > window_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double RollingMean::Value() const {
  if (values_.empty()) return 0.0;
  return sum_ / static_cast<double>(values_.size());
}

void RollingMean::Reset() {
  values_.clear();
  sum_ = 0.0;
}

}  // namespace apollo
