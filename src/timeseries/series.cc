#include "timeseries/series.h"

#include <algorithm>

namespace apollo {

WindowedDataset MakeWindows(const Series& series, std::size_t window) {
  WindowedDataset ds;
  if (window == 0 || series.size() <= window) return ds;
  const std::size_t n = series.size() - window;
  ds.inputs.reserve(n);
  ds.targets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.inputs.emplace_back(series.begin() + static_cast<std::ptrdiff_t>(i),
                           series.begin() +
                               static_cast<std::ptrdiff_t>(i + window));
    ds.targets.push_back(series[i + window]);
  }
  return ds;
}

Normalization FitNormalization(const Series& series) {
  Normalization norm;
  if (series.empty()) return norm;
  const auto [lo, hi] = std::minmax_element(series.begin(), series.end());
  norm.offset = *lo;
  const double range = *hi - *lo;
  norm.scale = range > 0.0 ? range : 1.0;
  return norm;
}

Series Normalize(const Series& series, const Normalization& norm) {
  Series out;
  out.reserve(series.size());
  for (double x : series) out.push_back(norm.Apply(x));
  return out;
}

}  // namespace apollo
