#include "timeseries/generators.h"

#include <algorithm>
#include <cmath>

namespace apollo {

const char* TsFeatureName(TsFeature feature) {
  switch (feature) {
    case TsFeature::kTrend:
      return "trend";
    case TsFeature::kSeasonal:
      return "seasonal";
    case TsFeature::kCyclic:
      return "cyclic";
    case TsFeature::kLevelShift:
      return "level_shift";
    case TsFeature::kVarianceShift:
      return "variance_shift";
    case TsFeature::kSpikes:
      return "spikes";
    case TsFeature::kRandomWalk:
      return "random_walk";
    case TsFeature::kStep:
      return "step";
  }
  return "unknown";
}

std::vector<TsFeature> AllTsFeatures() {
  std::vector<TsFeature> out;
  out.reserve(kNumTsFeatures);
  for (int i = 0; i < kNumTsFeatures; ++i) {
    out.push_back(static_cast<TsFeature>(i));
  }
  return out;
}

namespace {

// Clamps the finished series into [0, 1] softly by min-max rescale when it
// strays outside. Keeps all features on a comparable scale.
void RescaleInto01(Series& s) {
  if (s.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(s.begin(), s.end());
  const double lo = *lo_it, hi = *hi_it;
  if (lo >= 0.0 && hi <= 1.0) return;
  const double range = hi - lo;
  if (range <= 0.0) {
    std::fill(s.begin(), s.end(), 0.5);
    return;
  }
  for (double& x : s) x = (x - lo) / range;
}

Series GenerateTrend(std::size_t n, Rng& rng) {
  Series s(n);
  const double slope = rng.Uniform(0.3, 1.0) * (rng.Bernoulli(0.5) ? 1 : -1);
  const double start = rng.Uniform(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = start + slope * static_cast<double>(i) / static_cast<double>(n);
  }
  return s;
}

Series GenerateSeasonal(std::size_t n, Rng& rng) {
  Series s(n);
  const double period = rng.Uniform(16.0, 64.0);
  const double amp = rng.Uniform(0.3, 0.5);
  const double phase = rng.Uniform(0.0, 2.0 * M_PI);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = 0.5 + amp * std::sin(2.0 * M_PI * static_cast<double>(i) / period +
                                phase);
  }
  return s;
}

Series GenerateCyclic(std::size_t n, Rng& rng) {
  // Oscillation whose instantaneous period drifts — cycles without a fixed
  // seasonality.
  Series s(n);
  double phase = rng.Uniform(0.0, 2.0 * M_PI);
  double period = rng.Uniform(24.0, 48.0);
  const double amp = rng.Uniform(0.25, 0.45);
  for (std::size_t i = 0; i < n; ++i) {
    period += rng.Gaussian(0.0, 0.3);
    period = std::clamp(period, 12.0, 96.0);
    phase += 2.0 * M_PI / period;
    s[i] = 0.5 + amp * std::sin(phase);
  }
  return s;
}

Series GenerateLevelShift(std::size_t n, Rng& rng) {
  Series s(n);
  double level = rng.Uniform(0.2, 0.8);
  // 2-5 abrupt mean changes across the series.
  const int shifts = static_cast<int>(rng.UniformInt(2, 5));
  std::vector<std::size_t> cut_points;
  for (int k = 0; k < shifts; ++k) {
    cut_points.push_back(rng.NextBounded(n));
  }
  std::sort(cut_points.begin(), cut_points.end());
  std::size_t next_cut = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (next_cut < cut_points.size() && i >= cut_points[next_cut]) {
      level = rng.Uniform(0.1, 0.9);
      ++next_cut;
    }
    s[i] = level;
  }
  return s;
}

Series GenerateVarianceShift(std::size_t n, Rng& rng) {
  Series s(n);
  const std::size_t cut = n / 2 + rng.NextBounded(std::max<std::size_t>(n / 4, 1));
  const double sigma_low = 0.01;
  const double sigma_high = rng.Uniform(0.08, 0.15);
  for (std::size_t i = 0; i < n; ++i) {
    const double sigma = i < cut ? sigma_low : sigma_high;
    s[i] = 0.5 + rng.Gaussian(0.0, sigma);
  }
  return s;
}

Series GenerateSpikes(std::size_t n, Rng& rng) {
  Series s(n, 0.2);
  const double spike_prob = rng.Uniform(0.01, 0.05);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(spike_prob)) {
      s[i] = rng.Uniform(0.7, 1.0);
      // Exponential decay tail over the next few samples.
      double tail = s[i];
      for (std::size_t j = i + 1; j < std::min(i + 4, n); ++j) {
        tail *= 0.4;
        s[j] = std::max(s[j], tail);
      }
    }
  }
  return s;
}

Series GenerateRandomWalk(std::size_t n, Rng& rng) {
  Series s(n);
  double x = 0.5;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.Gaussian(0.0, 0.02);
    s[i] = x;
  }
  RescaleInto01(s);
  return s;
}

Series GenerateStep(std::size_t n, Rng& rng) {
  // Bounces between a few discrete value groupings — the paper calls out
  // non-continuous metrics bouncing between discrete levels as the case the
  // simple AIMD controller struggled with.
  const int num_levels = static_cast<int>(rng.UniformInt(2, 4));
  std::vector<double> levels;
  for (int k = 0; k < num_levels; ++k) {
    levels.push_back(rng.Uniform(0.05, 0.95));
  }
  Series s(n);
  std::size_t i = 0;
  int current = 0;
  while (i < n) {
    const std::size_t dwell = 4 + rng.NextBounded(24);
    for (std::size_t j = 0; j < dwell && i < n; ++j, ++i) {
      s[i] = levels[static_cast<std::size_t>(current)];
    }
    int next = static_cast<int>(rng.NextBounded(
        static_cast<std::uint64_t>(num_levels)));
    current = next;
  }
  return s;
}

}  // namespace

Series GenerateFeature(TsFeature feature, const GeneratorConfig& config) {
  Rng rng(config.seed ^ (0x9e37ULL * static_cast<std::uint64_t>(feature)));
  Series s;
  switch (feature) {
    case TsFeature::kTrend:
      s = GenerateTrend(config.length, rng);
      break;
    case TsFeature::kSeasonal:
      s = GenerateSeasonal(config.length, rng);
      break;
    case TsFeature::kCyclic:
      s = GenerateCyclic(config.length, rng);
      break;
    case TsFeature::kLevelShift:
      s = GenerateLevelShift(config.length, rng);
      break;
    case TsFeature::kVarianceShift:
      s = GenerateVarianceShift(config.length, rng);
      break;
    case TsFeature::kSpikes:
      s = GenerateSpikes(config.length, rng);
      break;
    case TsFeature::kRandomWalk:
      s = GenerateRandomWalk(config.length, rng);
      break;
    case TsFeature::kStep:
      s = GenerateStep(config.length, rng);
      break;
  }
  if (config.noise_stddev > 0.0) {
    for (double& x : s) x += rng.Gaussian(0.0, config.noise_stddev);
  }
  return s;
}

Series GenerateComposite(const std::vector<double>& weights,
                         const GeneratorConfig& config) {
  Series out(config.length, 0.0);
  double total_weight = 0.0;
  for (int i = 0; i < kNumTsFeatures; ++i) {
    const double w =
        i < static_cast<int>(weights.size()) ? weights[static_cast<std::size_t>(i)] : 0.0;
    if (w == 0.0) continue;
    total_weight += w;
    GeneratorConfig sub = config;
    sub.noise_stddev = 0.0;  // noise added once at the end
    sub.seed = config.seed + static_cast<std::uint64_t>(i) * 7919ULL;
    const Series f = GenerateFeature(static_cast<TsFeature>(i), sub);
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += w * f[j];
  }
  if (total_weight > 0.0) {
    for (double& x : out) x /= total_weight;
  }
  Rng rng(config.seed ^ 0xc0ffeeULL);
  for (double& x : out) x += rng.Gaussian(0.0, config.noise_stddev);
  return out;
}

Series GenerateCompositeAll(const GeneratorConfig& config) {
  return GenerateComposite(std::vector<double>(kNumTsFeatures, 1.0), config);
}

}  // namespace apollo
