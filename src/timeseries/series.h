// Uniformly sampled time series plus windowing utilities.
//
// Delphi consumes sliding windows of length 5 (the paper's window size) and
// predicts the next value; these helpers build supervised (window -> next)
// datasets out of raw series.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace apollo {

// Values sampled at a fixed interval; the interval itself is tracked by the
// producer (generators, monitor hooks).
using Series = std::vector<double>;

struct WindowedDataset {
  // Each row is a window of `window` consecutive values.
  std::vector<std::vector<double>> inputs;
  // Target: the value immediately following the window.
  std::vector<double> targets;

  std::size_t Size() const { return inputs.size(); }
};

// Builds (window -> next value) pairs from a series. A series shorter than
// window+1 yields an empty dataset.
WindowedDataset MakeWindows(const Series& series, std::size_t window);

// Min-max normalization to [0, 1]. Returns {scale, offset} so predictions
// can be mapped back: original = normalized * scale + offset. A constant
// series maps to all-zeros with scale 1.
struct Normalization {
  double scale = 1.0;
  double offset = 0.0;

  double Apply(double x) const { return (x - offset) / scale; }
  double Invert(double y) const { return y * scale + offset; }
};

Normalization FitNormalization(const Series& series);
Series Normalize(const Series& series, const Normalization& norm);

}  // namespace apollo
