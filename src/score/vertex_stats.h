// Per-vertex operation accounting, reproducing Figure 4's anatomy of
// time spent in each internal component of a Fact/Insight vertex.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace apollo {

struct VertexStats {
  // Wall time spent per internal operation (nanoseconds, real clock).
  std::atomic<std::int64_t> hook_time_ns{0};      // Monitor Hook
  std::atomic<std::int64_t> build_time_ns{0};     // Fact/Insight Builder
  std::atomic<std::int64_t> publish_time_ns{0};   // queue publish
  std::atomic<std::int64_t> consume_time_ns{0};   // upstream fetch (insight)
  std::atomic<std::int64_t> predict_time_ns{0};   // Delphi inference
  std::atomic<std::int64_t> other_time_ns{0};     // scheduling etc.

  std::atomic<std::uint64_t> hook_calls{0};
  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> suppressed{0};   // unchanged values not queued
  std::atomic<std::uint64_t> predictions{0};
  std::atomic<std::uint64_t> publish_failures{0};  // retries exhausted
  std::atomic<std::uint64_t> crashes{0};      // injected/forced crashes
  std::atomic<std::uint64_t> restarts{0};     // supervisor restarts

  std::int64_t TotalTimeNs() const {
    return hook_time_ns + build_time_ns + publish_time_ns + consume_time_ns +
           predict_time_ns + other_time_ns;
  }

  void Reset() {
    hook_time_ns = 0;
    build_time_ns = 0;
    publish_time_ns = 0;
    consume_time_ns = 0;
    predict_time_ns = 0;
    other_time_ns = 0;
    hook_calls = 0;
    published = 0;
    suppressed = 0;
    predictions = 0;
    publish_failures = 0;
    crashes = 0;
    restarts = 0;
  }
};

// Scoped real-time stopwatch accumulating into an atomic counter.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::atomic<std::int64_t>& sink)
      : sink_(sink), start_(NowRaw()) {}
  ~ScopedTimer() { sink_ += NowRaw() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  static std::int64_t NowRaw();

  std::atomic<std::int64_t>& sink_;
  std::int64_t start_;
};

}  // namespace apollo
