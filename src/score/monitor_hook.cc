#include "score/monitor_hook.h"

namespace apollo {

MonitorHook CapacityRemainingHook(Device& device, TimeNs cost) {
  return MonitorHook{
      device.name() + ".capacity_remaining",
      [&device](TimeNs) { return static_cast<double>(device.RemainingBytes()); },
      cost};
}

MonitorHook UtilizationHook(Device& device, TimeNs cost) {
  return MonitorHook{device.name() + ".utilization",
                     [&device](TimeNs) { return device.UtilizationFraction(); },
                     cost};
}

MonitorHook QueueDepthHook(Device& device, TimeNs cost) {
  return MonitorHook{
      device.name() + ".queue_depth",
      [&device](TimeNs now) { return static_cast<double>(device.QueueDepth(now)); },
      cost};
}

MonitorHook RealBandwidthHook(Device& device, TimeNs cost) {
  return MonitorHook{
      device.name() + ".real_bw",
      [&device](TimeNs now) { return device.RealBandwidth(now); }, cost};
}

MonitorHook DeviceHealthHook(Device& device, TimeNs cost) {
  return MonitorHook{device.name() + ".health",
                     [&device](TimeNs) { return device.Health(); }, cost};
}

MonitorHook PowerHook(Node& node, TimeNs cost) {
  return MonitorHook{node.name() + ".power_watts",
                     [&node](TimeNs now) { return node.PowerWatts(now); },
                     cost};
}

MonitorHook CpuLoadHook(Node& node, TimeNs cost) {
  return MonitorHook{node.name() + ".cpu_load",
                     [&node](TimeNs) { return node.CpuLoad(); }, cost};
}

MonitorHook NodeOnlineHook(Node& node, TimeNs cost) {
  return MonitorHook{node.name() + ".online",
                     [&node](TimeNs) { return node.Online() ? 1.0 : 0.0; },
                     cost};
}

MonitorHook TraceReplayHook(const CapacityTrace& trace, std::string name,
                            TimeNs cost) {
  return MonitorHook{std::move(name),
                     [&trace](TimeNs now) { return trace.ValueAt(now); },
                     cost};
}

}  // namespace apollo
