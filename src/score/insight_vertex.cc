#include "score/insight_vertex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace apollo {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}

InsightFn SumInsight() {
  return [](const std::vector<double>& latest, TimeNs) {
    double sum = 0.0;
    for (double v : latest) {
      if (std::isnan(v)) return kNan;
      sum += v;
    }
    return sum;
  };
}

InsightFn MeanInsight() {
  return [](const std::vector<double>& latest, TimeNs) {
    if (latest.empty()) return kNan;
    double sum = 0.0;
    for (double v : latest) {
      if (std::isnan(v)) return kNan;
      sum += v;
    }
    return sum / static_cast<double>(latest.size());
  };
}

InsightFn MinInsight() {
  return [](const std::vector<double>& latest, TimeNs) {
    double best = std::numeric_limits<double>::infinity();
    for (double v : latest) {
      if (std::isnan(v)) return kNan;
      best = std::min(best, v);
    }
    return latest.empty() ? kNan : best;
  };
}

InsightFn MaxInsight() {
  return [](const std::vector<double>& latest, TimeNs) {
    double best = -std::numeric_limits<double>::infinity();
    for (double v : latest) {
      if (std::isnan(v)) return kNan;
      best = std::max(best, v);
    }
    return latest.empty() ? kNan : best;
  };
}

InsightVertex::InsightVertex(Broker& broker, InsightFn fn,
                             InsightVertexConfig config,
                             const delphi::DelphiModel* delphi,
                             Archiver<Sample>* archiver)
    : broker_(broker),
      fn_(std::move(fn)),
      config_(std::move(config)),
      archiver_(archiver),
      latest_(config_.upstream.size(), kNan) {
  if (delphi != nullptr && config_.prediction_granularity > 0) {
    predictor_ = std::make_unique<delphi::StreamingPredictor>(*delphi);
  }
}

InsightVertex::~InsightVertex() { Undeploy(); }

Status InsightVertex::Deploy(EventLoop& loop) {
  if (deployed_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "vertex already deployed: " + config_.topic);
  }
  if (config_.upstream.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "insight vertex needs at least one upstream: " +
                      config_.topic);
  }
  if (!broker_.HasTopic(config_.topic)) {
    auto created = broker_.CreateTopic(config_.topic, config_.node,
                                       config_.queue_capacity, archiver_);
    if (!created.ok()) return created.status();
  }
  auto handle = broker_.Resolve(config_.topic);
  if (!handle.ok()) return handle.status();
  handle_ = *std::move(handle);
  // Start cursors at 0 so any pre-existing upstream history is consumed.
  // Upstreams that do not exist yet stay as invalid handles and resolve on
  // a later pull.
  cursors_.assign(config_.upstream.size(), 0);
  upstream_handles_.clear();
  for (const std::string& topic : config_.upstream) {
    auto upstream = broker_.Resolve(topic);
    upstream_handles_.push_back(upstream.ok() ? *std::move(upstream)
                                              : TopicHandle());
  }

  loop_ = &loop;
  next_pull_time_ = loop.clock().Now();
  last_fire_.store(next_pull_time_, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  timer_ = loop.AddTimer(0, [this](TimeNs now) { return OnTimer(now); });
  deployed_ = true;
  return Status::Ok();
}

void InsightVertex::Undeploy() {
  if (!deployed_) return;
  loop_->CancelTimer(timer_);
  deployed_ = false;
  loop_ = nullptr;
}

TimeNs InsightVertex::ExpectedFireInterval() const {
  TimeNs interval = config_.pull_interval;
  if (predictor_ != nullptr && config_.prediction_granularity > 0) {
    interval = std::min(interval, config_.prediction_granularity);
  }
  return interval;
}

void InsightVertex::MarkCrashed() {
  crashed_.store(true, std::memory_order_release);
  ++stats_.crashes;
  GlobalTelemetry().vertex_crashes.fetch_add(1, std::memory_order_relaxed);
  if (handle_.valid() && !handle_.stream()->SetDegraded(true)) {
    GlobalTelemetry().degraded_marked.fetch_add(1, std::memory_order_relaxed);
  }
}

void InsightVertex::ForceCrash() {
  if (!deployed_ || crashed()) return;
  loop_->CancelTimer(timer_);
  MarkCrashed();
}

Status InsightVertex::Restart() {
  if (!deployed_ || loop_ == nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  "restart of undeployed vertex: " + config_.topic);
  }
  if (!crashed()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "restart of live vertex: " + config_.topic);
  }
  next_pull_time_ = loop_->clock().Now();
  last_fire_.store(next_pull_time_, std::memory_order_release);
  last_published_.reset();  // see FactVertex::Restart
  crashed_.store(false, std::memory_order_release);
  ++stats_.restarts;
  timer_ = loop_->AddTimer(0, [this](TimeNs now) { return OnTimer(now); });
  return Status::Ok();
}

TimeNs InsightVertex::OnTimer(TimeNs now) {
  last_fire_.store(now, std::memory_order_release);
  if (FaultInjector* injector = broker_.fault_injector()) {
    if (auto crash = injector->Evaluate(FaultSite::kVertexPoll, config_.topic);
        crash.has_value() && crash->fails()) {
      MarkCrashed();
      return kStopTimer;
    }
    if (auto stall =
            injector->Evaluate(FaultSite::kVertexStall, config_.topic);
        stall.has_value() && stall->fails()) {
      return kStopTimer;  // silent: supervisor stall detection catches it
    }
  }
  if (now >= next_pull_time_) {
    DoPull(now);
    next_pull_time_ = now + config_.pull_interval;
    if (predictor_ != nullptr &&
        config_.prediction_granularity < config_.pull_interval) {
      return config_.prediction_granularity;
    }
    return config_.pull_interval;
  }
  DoPrediction(now);
  return std::min(config_.prediction_granularity, next_pull_time_ - now);
}

void InsightVertex::DoPull(TimeNs now) {
  bool any_update = false;
  {
    ScopedTimer timer(stats_.consume_time_ns);
    for (std::size_t i = 0; i < config_.upstream.size(); ++i) {
      TopicHandle& upstream = upstream_handles_[i];
      if (!upstream.valid()) {
        auto resolved = broker_.Resolve(config_.upstream[i]);
        if (!resolved.ok()) continue;  // upstream not created yet
        upstream = *std::move(resolved);
      }
      auto fetched =
          broker_.FetchIntoWithRetry(upstream, config_.node, cursors_[i],
                                     fetch_scratch_, SIZE_MAX,
                                     config_.publish_retry);
      if (!fetched.ok()) continue;  // cursor unmoved; next pull re-reads
      if (*fetched > 0) {
        latest_[i] = fetch_scratch_.back().value.value;
        any_update = true;
      }
    }
  }
  double value;
  {
    ScopedTimer timer(stats_.build_time_ns);
    value = fn_(latest_, now);
    if (predictor_ != nullptr && !std::isnan(value)) {
      predictor_->Observe(value);
    }
  }
  if (std::isnan(value)) return;
  // Publish even without upstream updates on the first computation; after
  // that, only when something changed (change suppression handles it).
  (void)any_update;
  PublishSample(broker_.clock().Now(), value, Provenance::kMeasured);
}

void InsightVertex::DoPrediction(TimeNs now) {
  if (predictor_ == nullptr) return;
  std::optional<double> predicted;
  {
    ScopedTimer timer(stats_.predict_time_ns);
    predicted = predictor_->PredictNext();
    if (predicted.has_value()) {
      predictor_->ObservePredicted(*predicted);
      ++stats_.predictions;
    }
  }
  if (predicted.has_value()) {
    PublishSample(now, *predicted, Provenance::kPredicted);
  }
}

void InsightVertex::PublishSample(TimeNs now, double value,
                                  Provenance provenance) {
  if (config_.publish_only_on_change && last_published_.has_value() &&
      *last_published_ == value) {
    ++stats_.suppressed;
    return;
  }
  ScopedTimer timer(stats_.publish_time_ns);
  auto published =
      broker_.PublishWithRetry(handle_, config_.node, now,
                               Sample{now, value, provenance},
                               config_.publish_retry);
  if (!published.ok()) {
    ++stats_.publish_failures;
    APOLLO_LOG(ERROR) << "publish failed on " << config_.topic << ": "
                      << published.error().ToString();
    return;
  }
  last_published_ = value;
  ++stats_.published;
  if (provenance == Provenance::kMeasured && handle_.valid() &&
      handle_.stream()->degraded() && !crashed()) {
    if (handle_.stream()->SetDegraded(false)) {
      GlobalTelemetry().degraded_cleared.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
  }
}

}  // namespace apollo
