#include "score/score_graph.h"

#include <algorithm>

namespace apollo {

// Lock ordering note: methods take mu_ and may then touch the event loop
// (Deploy/Undeploy register or cancel timers). The loop never calls back
// into the graph while holding its own lock, so graph-then-loop is the one
// ordering in the program and cannot deadlock.

Expected<FactVertex*> ScoreGraph::AddFact(std::unique_ptr<FactVertex> vertex,
                                          EventLoop* deploy_on) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string topic = vertex->topic();
  if (HasLocked(topic)) {
    return Error(ErrorCode::kAlreadyExists, "vertex exists: " + topic);
  }
  FactVertex* raw = vertex.get();
  if (deploy_on != nullptr) {
    Status status = raw->Deploy(*deploy_on);
    if (!status.ok()) return Error(status.code(), status.message());
  }
  facts_.emplace(topic, std::move(vertex));
  return raw;
}

Expected<InsightVertex*> ScoreGraph::AddInsight(
    std::unique_ptr<InsightVertex> vertex, EventLoop* deploy_on) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string topic = vertex->topic();
  if (HasLocked(topic)) {
    return Error(ErrorCode::kAlreadyExists, "vertex exists: " + topic);
  }
  if (WouldCreateCycle(topic, vertex->upstream())) {
    return Error(ErrorCode::kInvalidArgument,
                 "registering " + topic + " would create a cycle");
  }
  InsightVertex* raw = vertex.get();
  if (deploy_on != nullptr) {
    Status status = raw->Deploy(*deploy_on);
    if (!status.ok()) return Error(status.code(), status.message());
  }
  insights_.emplace(topic, std::move(vertex));
  return raw;
}

Status ScoreGraph::Remove(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = facts_.find(topic); it != facts_.end()) {
    it->second->Undeploy();
    facts_.erase(it);
    return Status::Ok();
  }
  if (auto it = insights_.find(topic); it != insights_.end()) {
    it->second->Undeploy();
    insights_.erase(it);
    return Status::Ok();
  }
  return Status(ErrorCode::kNotFound, "no vertex: " + topic);
}

Expected<FactVertex*> ScoreGraph::FindFact(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = facts_.find(topic);
  if (it == facts_.end()) {
    return Error(ErrorCode::kNotFound, "no fact vertex: " + topic);
  }
  return it->second.get();
}

Expected<InsightVertex*> ScoreGraph::FindInsight(
    const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = insights_.find(topic);
  if (it == insights_.end()) {
    return Error(ErrorCode::kNotFound, "no insight vertex: " + topic);
  }
  return it->second.get();
}

bool ScoreGraph::HasLocked(const std::string& topic) const {
  return facts_.count(topic) > 0 || insights_.count(topic) > 0;
}

bool ScoreGraph::Has(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return HasLocked(topic);
}

std::vector<std::string> ScoreGraph::FactTopics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(facts_.size());
  for (const auto& [topic, vertex] : facts_) out.push_back(topic);
  return out;
}

std::vector<std::string> ScoreGraph::InsightTopics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(insights_.size());
  for (const auto& [topic, vertex] : insights_) out.push_back(topic);
  return out;
}

std::vector<std::string> ScoreGraph::AllTopics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(facts_.size() + insights_.size());
  for (const auto& [topic, vertex] : facts_) out.push_back(topic);
  for (const auto& [topic, vertex] : insights_) out.push_back(topic);
  return out;
}

std::size_t ScoreGraph::NumVertices() const {
  std::lock_guard<std::mutex> lock(mu_);
  return facts_.size() + insights_.size();
}

Status ScoreGraph::DeployAll(EventLoop& loop) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [topic, vertex] : facts_) {
    Status status = vertex->Deploy(loop);
    if (!status.ok()) return status;
  }
  for (auto& [topic, vertex] : insights_) {
    Status status = vertex->Deploy(loop);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void ScoreGraph::UndeployAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [topic, vertex] : facts_) vertex->Undeploy();
  for (auto& [topic, vertex] : insights_) vertex->Undeploy();
}

bool ScoreGraph::WouldCreateCycle(
    const std::string& topic, const std::vector<std::string>& upstream) const {
  // DFS from each upstream following existing insight edges; a path back to
  // `topic` means the new vertex closes a cycle. (Facts have no upstream.)
  std::vector<std::string> stack(upstream.begin(), upstream.end());
  std::vector<std::string> visited;
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    if (current == topic) return true;
    if (std::find(visited.begin(), visited.end(), current) != visited.end()) {
      continue;
    }
    visited.push_back(current);
    auto it = insights_.find(current);
    if (it != insights_.end()) {
      for (const std::string& up : it->second->upstream()) {
        stack.push_back(up);
      }
    }
  }
  return false;
}

Expected<int> ScoreGraph::DistanceInternal(const std::string& topic,
                                           std::map<std::string, int>& memo,
                                           int depth) const {
  const int vertex_count = static_cast<int>(facts_.size() + insights_.size());
  if (depth > vertex_count + 1) {
    return Error(ErrorCode::kInternal, "cycle detected at " + topic);
  }
  if (auto it = memo.find(topic); it != memo.end()) return it->second;
  if (facts_.count(topic) > 0) {
    memo[topic] = 0;
    return 0;
  }
  auto it = insights_.find(topic);
  if (it == insights_.end()) {
    return Error(ErrorCode::kNotFound, "no vertex: " + topic);
  }
  int best = 0;
  for (const std::string& up : it->second->upstream()) {
    auto d = DistanceInternal(up, memo, depth + 1);
    // Upstream topics that are not SCoRe vertices (external streams) count
    // as distance 0 sources.
    const int upstream_distance = d.ok() ? *d : 0;
    best = std::max(best, upstream_distance);
  }
  memo[topic] = best + 1;
  return best + 1;
}

Expected<int> ScoreGraph::HammingDistance(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int> memo;
  return DistanceInternal(topic, memo, 0);
}

std::string ScoreGraph::ToDot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "digraph score {\n  rankdir=LR;\n";
  for (const auto& [topic, vertex] : facts_) {
    out += "  \"" + topic + "\" [shape=box];\n";
  }
  for (const auto& [topic, vertex] : insights_) {
    out += "  \"" + topic + "\" [shape=ellipse];\n";
    for (const std::string& up : vertex->upstream()) {
      out += "  \"" + up + "\" -> \"" + topic + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

int ScoreGraph::Height() const {
  std::lock_guard<std::mutex> lock(mu_);
  int height = 0;
  std::map<std::string, int> memo;
  for (const auto& [topic, vertex] : insights_) {
    auto d = DistanceInternal(topic, memo, 0);
    if (d.ok()) height = std::max(height, *d);
  }
  return height;
}

}  // namespace apollo
