// Monitor Hooks: the functions Fact Vertices call to extract a Metric from
// a cluster resource (§3.1 step 1).
//
// A hook returns the metric's current value; `cost` models the time the
// real probe takes (reading /sys counters, SMART queries, ...) and is
// charged to the clock so that hook cost dominates vertex time exactly as
// in Figure 4.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "cluster/cluster.h"
#include "cluster/workloads.h"
#include "common/clock.h"

namespace apollo {

struct MonitorHook {
  std::string metric_name;
  std::function<double(TimeNs now)> read;
  TimeNs cost = Millis(1);  // simulated probe duration

  double Invoke(Clock& clock) const {
    if (cost > 0) clock.Charge(cost);
    return read(clock.Now());
  }
};

// --- hook library over the simulated cluster ---

MonitorHook CapacityRemainingHook(Device& device, TimeNs cost = Millis(1));
MonitorHook UtilizationHook(Device& device, TimeNs cost = Millis(1));
MonitorHook QueueDepthHook(Device& device, TimeNs cost = Millis(1));
MonitorHook RealBandwidthHook(Device& device, TimeNs cost = Millis(1));
MonitorHook DeviceHealthHook(Device& device, TimeNs cost = Millis(1));
MonitorHook PowerHook(Node& node, TimeNs cost = Millis(1));
MonitorHook CpuLoadHook(Node& node, TimeNs cost = Millis(1));
MonitorHook NodeOnlineHook(Node& node, TimeNs cost = Millis(1));

// Replays a capacity trace: the synthetic monitoring hook of §4.3.1.
MonitorHook TraceReplayHook(const CapacityTrace& trace, std::string name,
                            TimeNs cost = Millis(1));

}  // namespace apollo
