// VertexSupervisor: detects crashed and stalled SCoRe vertices and
// restarts them with bounded exponential backoff.
//
// A vertex "crashes" when its timer dies with the crash flag set (the
// kVertexPoll fault site, or ForceCrash). It "stalls" when the timer dies
// silently (kVertexStall) or wedges: the supervisor treats a firing gap
// much larger than the vertex's expected interval as a stall and converts
// it into a crash, so both failure modes flow through one restart path.
//
// While a vertex is down its stream is flagged degraded; AQE keeps
// answering from last-known-good / predicted values with an explicit
// staleness marker, and the flag clears on the first measured publish
// after restart. Vertices that keep crashing are given up on after
// max_restarts, which is what turns a flapping node "unavailable" in
// AvailableNodes() — the real signal behind the node-availability insight
// (previously synthetic input).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "eventloop/event_loop.h"
#include "score/monitor_hook.h"
#include "score/score_graph.h"

namespace apollo {

struct SupervisorOptions {
  // Health-check cadence (one event-loop timer).
  TimeNs check_interval = Millis(500);
  // A vertex is stalled when now - last_fire() exceeds
  // max(stall_timeout, stall_factor * ExpectedFireInterval()). The factor
  // keeps adaptive vertices with long AIMD intervals from being
  // false-crashed.
  TimeNs stall_timeout = Seconds(2);
  int stall_factor = 4;
  // Restart backoff: first restart waits initial_restart_backoff, each
  // subsequent one multiplies it, capped at max_restart_backoff. The
  // actual wait gets full jitter (uniform in [backoff*(1-jitter),
  // backoff]) so the vertices of a node that died together do not
  // restart — and re-poll their hardware — in lockstep.
  TimeNs initial_restart_backoff = Millis(10);
  double backoff_multiplier = 2.0;
  TimeNs max_restart_backoff = Seconds(5);
  double restart_jitter = 1.0;
  // After this many restarts without a healthy stretch the supervisor
  // gives up on the vertex (it stays crashed and its node unavailable).
  int max_restarts = 8;
  // A vertex that stays healthy this long after a restart earns its
  // restart budget back.
  TimeNs healthy_reset = Seconds(10);
};

class VertexSupervisor {
 public:
  // Health snapshot of one supervised vertex.
  struct VertexHealth {
    std::string topic;
    NodeId node = kLocalNode;
    bool crashed = false;
    bool gave_up = false;
    int restarts = 0;
    TimeNs last_fire = 0;
  };

  VertexSupervisor(ScoreGraph& graph, SupervisorOptions options = {});
  ~VertexSupervisor();

  VertexSupervisor(const VertexSupervisor&) = delete;
  VertexSupervisor& operator=(const VertexSupervisor&) = delete;

  // Registers the health-check timer on `loop`; Stop cancels it. Vertices
  // must not be Remove()d from the graph while the supervisor runs —
  // clients Stop() first (the same teardown coordination the graph already
  // requires).
  Status Start(EventLoop& loop);
  void Stop();

  // One supervision pass (normally driven by the timer; exposed so tests
  // and SimClock runs can step it deterministically).
  void Poll(TimeNs now);

  std::vector<VertexHealth> Snapshot() const;

  // Nodes hosting at least one supervised vertex, none of which is
  // currently crashed / given up on.
  std::size_t AvailableNodes() const;
  // Nodes hosting at least one supervised vertex.
  std::size_t KnownNodes() const;
  // True when `node` hosts no crashed / given-up vertex. Nodes the
  // supervisor has never seen a vertex on are healthy by definition, so
  // callers can intersect this with an external liveness signal.
  bool NodeHealthy(NodeId node) const;

  std::uint64_t crashes_seen() const {
    return crashes_seen_.load(std::memory_order_relaxed);
  }
  std::uint64_t stalls_detected() const {
    return stalls_detected_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts_issued() const {
    return restarts_issued_.load(std::memory_order_relaxed);
  }
  std::uint64_t give_ups() const {
    return give_ups_.load(std::memory_order_relaxed);
  }

  const SupervisorOptions& options() const { return options_; }

 private:
  struct Entry {
    int restarts = 0;
    TimeNs backoff = 0;          // next restart's delay
    TimeNs next_restart_at = 0;  // 0 = no restart scheduled
    TimeNs last_restart_at = 0;
    bool gave_up = false;
    bool was_crashed = false;  // edge-detect crash transitions
  };

  // V is FactVertex or InsightVertex (identical supervision surface).
  template <typename V>
  void SuperviseLocked(V& vertex, TimeNs now);

  ScoreGraph& graph_;
  SupervisorOptions options_;

  EventLoop* loop_ = nullptr;
  TimerId timer_ = 0;
  bool started_ = false;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;

  std::atomic<std::uint64_t> crashes_seen_{0};
  std::atomic<std::uint64_t> stalls_detected_{0};
  std::atomic<std::uint64_t> restarts_issued_{0};
  std::atomic<std::uint64_t> give_ups_{0};
};

// Monitor hook reporting the supervisor's available-node count — the
// real-signal replacement for the synthetic node-availability input in the
// curated insight set. The supervisor must outlive any vertex using the
// hook.
MonitorHook SupervisorAvailableNodesHook(const VertexSupervisor& supervisor,
                                         TimeNs cost = 0);

}  // namespace apollo
