#include "score/vertex_stats.h"

#include <chrono>

namespace apollo {

std::int64_t ScopedTimer::NowRaw() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace apollo
