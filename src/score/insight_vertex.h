// Insight Vertex — SCoRe's inner/sink vertices (§3.1, §3.2).
//
// Subscribes (pull-based, per the paper's "pull mechanism" design note) to
// one or more upstream streams — Facts or other Insights — and combines
// their latest values into a new Insight via an InsightFn, publishing into
// its own dedicated queue. Like Fact Vertices, an optional Delphi predictor
// can fill in predicted Insights between pulls.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "delphi/predictor.h"
#include "eventloop/event_loop.h"
#include "pubsub/broker.h"
#include "score/vertex_stats.h"

namespace apollo {

// Combines the most recent value of each upstream topic (ordered as in
// `upstream`) into the insight value. Entries without data yet are NaN.
using InsightFn =
    std::function<double(const std::vector<double>& latest, TimeNs now)>;

// Common aggregations.
InsightFn SumInsight();
InsightFn MeanInsight();
InsightFn MinInsight();
InsightFn MaxInsight();

struct InsightVertexConfig {
  std::string topic;
  NodeId node = kLocalNode;
  std::vector<std::string> upstream;
  TimeNs pull_interval = Seconds(1);
  std::size_t queue_capacity = 4096;
  bool publish_only_on_change = true;
  TimeNs prediction_granularity = 0;
  // Publish retry policy; upstream fetches retry with the same policy.
  RetryPolicy publish_retry;
};

class InsightVertex {
 public:
  InsightVertex(Broker& broker, InsightFn fn, InsightVertexConfig config,
                const delphi::DelphiModel* delphi = nullptr,
                Archiver<Sample>* archiver = nullptr);

  ~InsightVertex();

  InsightVertex(const InsightVertex&) = delete;
  InsightVertex& operator=(const InsightVertex&) = delete;

  Status Deploy(EventLoop& loop);
  void Undeploy();

  // --- supervision surface (see FactVertex for semantics) ---
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  TimeNs last_fire() const {
    return last_fire_.load(std::memory_order_acquire);
  }
  TimeNs ExpectedFireInterval() const;
  void ForceCrash();
  Status Restart();

  const std::string& topic() const { return config_.topic; }
  NodeId node() const { return config_.node; }
  const std::vector<std::string>& upstream() const {
    return config_.upstream;
  }
  const VertexStats& stats() const { return stats_; }

  // Latest computed insight value (NaN until all upstreams have produced
  // at least one value — or a partial value if the InsightFn tolerates
  // NaNs).
  std::optional<double> LatestValue() const { return last_published_; }

 private:
  TimeNs OnTimer(TimeNs now);
  void DoPull(TimeNs now);
  void DoPrediction(TimeNs now);
  void PublishSample(TimeNs now, double value, Provenance provenance);
  void MarkCrashed();

  Broker& broker_;
  InsightFn fn_;
  InsightVertexConfig config_;
  std::unique_ptr<delphi::StreamingPredictor> predictor_;
  Archiver<Sample>* archiver_;

  EventLoop* loop_ = nullptr;
  TimerId timer_ = 0;
  bool deployed_ = false;
  std::atomic<bool> crashed_{false};
  std::atomic<TimeNs> last_fire_{0};

  TimeNs next_pull_time_ = 0;
  // Own topic + upstream handles resolved at deploy time (an upstream that
  // does not exist yet resolves lazily on first successful pull); cursors
  // are parallel to config_.upstream.
  TopicHandle handle_;
  std::vector<TopicHandle> upstream_handles_;
  std::vector<std::uint64_t> cursors_;
  std::vector<StreamEntry<Sample>> fetch_scratch_;
  std::vector<double> latest_;
  std::optional<double> last_published_;
  VertexStats stats_;
};

}  // namespace apollo
