#include "score/fact_vertex.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace apollo {

FactVertex::FactVertex(Broker& broker, MonitorHook hook,
                       std::unique_ptr<IntervalController> controller,
                       FactVertexConfig config,
                       const delphi::DelphiModel* delphi,
                       Archiver<Sample>* archiver)
    : broker_(broker),
      hook_(std::move(hook)),
      controller_(std::move(controller)),
      config_(std::move(config)),
      archiver_(archiver) {
  if (config_.topic.empty()) config_.topic = hook_.metric_name;
  if (delphi != nullptr && config_.prediction_granularity > 0) {
    predictor_ = std::make_unique<delphi::StreamingPredictor>(*delphi);
  }
}

FactVertex::~FactVertex() { Undeploy(); }

Status FactVertex::Deploy(EventLoop& loop) {
  if (deployed_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "vertex already deployed: " + config_.topic);
  }
  if (!broker_.HasTopic(config_.topic)) {
    auto created = broker_.CreateTopic(config_.topic, config_.node,
                                       config_.queue_capacity, archiver_);
    if (!created.ok()) return created.status();
  }
  auto handle = broker_.Resolve(config_.topic);
  if (!handle.ok()) return handle.status();
  handle_ = *std::move(handle);
  loop_ = &loop;
  next_poll_time_ = loop.clock().Now();
  last_fire_.store(next_poll_time_, std::memory_order_release);
  crashed_.store(false, std::memory_order_release);
  timer_ = loop.AddTimer(0, [this](TimeNs now) { return OnTimer(now); });
  deployed_ = true;
  return Status::Ok();
}

void FactVertex::Undeploy() {
  if (!deployed_) return;
  loop_->CancelTimer(timer_);
  deployed_ = false;
  loop_ = nullptr;
}

TimeNs FactVertex::ExpectedFireInterval() const {
  TimeNs interval = controller_->CurrentInterval();
  if (predictor_ != nullptr && config_.prediction_granularity > 0) {
    interval = std::min(interval, config_.prediction_granularity);
  }
  return interval;
}

void FactVertex::MarkCrashed() {
  crashed_.store(true, std::memory_order_release);
  ++stats_.crashes;
  GlobalTelemetry().vertex_crashes.fetch_add(1, std::memory_order_relaxed);
  if (handle_.valid() && !handle_.stream()->SetDegraded(true)) {
    GlobalTelemetry().degraded_marked.fetch_add(1, std::memory_order_relaxed);
  }
}

void FactVertex::ForceCrash() {
  if (!deployed_ || crashed()) return;
  loop_->CancelTimer(timer_);
  MarkCrashed();
}

Status FactVertex::Restart() {
  if (!deployed_ || loop_ == nullptr) {
    return Status(ErrorCode::kFailedPrecondition,
                  "restart of undeployed vertex: " + config_.topic);
  }
  if (!crashed()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "restart of live vertex: " + config_.topic);
  }
  next_poll_time_ = loop_->clock().Now();
  last_fire_.store(next_poll_time_, std::memory_order_release);
  // Forget the pre-crash value so change suppression cannot swallow the
  // first post-restart sample (which also clears the degraded flag).
  last_published_.reset();
  crashed_.store(false, std::memory_order_release);
  ++stats_.restarts;
  timer_ = loop_->AddTimer(0, [this](TimeNs now) { return OnTimer(now); });
  return Status::Ok();
}

TimeNs FactVertex::OnTimer(TimeNs now) {
  last_fire_.store(now, std::memory_order_release);
  if (FaultInjector* injector = broker_.fault_injector()) {
    if (auto crash = injector->Evaluate(FaultSite::kVertexPoll, config_.topic);
        crash.has_value() && crash->fails()) {
      MarkCrashed();
      return kStopTimer;
    }
    if (auto stall =
            injector->Evaluate(FaultSite::kVertexStall, config_.topic);
        stall.has_value() && stall->fails()) {
      return kStopTimer;  // silent: supervisor stall detection catches it
    }
  }
  if (now >= next_poll_time_) {
    const TimeNs interval = DoRealPoll(now);
    next_poll_time_ = now + interval;
    if (predictor_ != nullptr && config_.prediction_granularity > 0 &&
        config_.prediction_granularity < interval) {
      return config_.prediction_granularity;
    }
    return interval;
  }
  // Between polls: emit a predicted sample.
  DoPrediction(now);
  const TimeNs until_poll = next_poll_time_ - now;
  return std::min(config_.prediction_granularity, until_poll);
}

TimeNs FactVertex::DoRealPoll(TimeNs /*now*/) {
  double value;
  {
    ScopedTimer timer(stats_.hook_time_ns);
    value = hook_.Invoke(broker_.clock());
    ++stats_.hook_calls;
  }
  {
    // The Fact Builder step: convert the Metric into a Fact (tuple build).
    ScopedTimer timer(stats_.build_time_ns);
    if (predictor_ != nullptr) predictor_->Observe(value);
  }
  PublishSample(broker_.clock().Now(), value, Provenance::kMeasured);

  TimeNs interval;
  {
    ScopedTimer timer(stats_.other_time_ns);
    interval = controller_->OnSample(value);
  }
  return interval;
}

void FactVertex::DoPrediction(TimeNs now) {
  if (predictor_ == nullptr) return;
  (void)now;  // kept for symmetry; publish stamps the clock's Now()
  TRACE_SPAN("delphi.predict", config_.topic);
  static obs::Counter predictions = obs::MetricsRegistry::Global().GetCounter(
      "apollo_delphi_predictions_total", "Delphi PredictNext calls that produced a value");
  static obs::Histogram predict_hist =
      obs::MetricsRegistry::Global().GetHistogram(
          "apollo_delphi_predict_duration_ns", "Delphi PredictNext latency");
  const std::int64_t predict_start = stats_.predict_time_ns;
  std::optional<double> predicted;
  {
    ScopedTimer timer(stats_.predict_time_ns);
    predicted = predictor_->PredictNext();
    if (predicted.has_value()) {
      predictor_->ObservePredicted(*predicted);
      ++stats_.predictions;
    }
  }
  predict_hist.Record(stats_.predict_time_ns - predict_start);
  if (predicted.has_value()) {
    predictions.Inc();
    PublishSample(now, *predicted, Provenance::kPredicted);
  }
}

void FactVertex::PublishSample(TimeNs now, double value,
                               Provenance provenance) {
  if (config_.publish_only_on_change && last_published_.has_value() &&
      *last_published_ == value) {
    ++stats_.suppressed;
    return;
  }
  ScopedTimer timer(stats_.publish_time_ns);
  auto published =
      broker_.PublishWithRetry(handle_, config_.node, now,
                               Sample{now, value, provenance},
                               config_.publish_retry);
  if (!published.ok()) {
    // Surfaced, counted, and repaired on the next poll: last_published_ is
    // left untouched, so change suppression cannot treat the lost tuple as
    // delivered.
    ++stats_.publish_failures;
    APOLLO_LOG(ERROR) << "publish failed on " << config_.topic << ": "
                      << published.error().ToString();
    return;
  }
  last_published_ = value;
  ++stats_.published;
  // Fresh measured data ends degraded mode (entered when this vertex
  // crashed or stalled).
  if (provenance == Provenance::kMeasured && handle_.valid() &&
      handle_.stream()->degraded() && !crashed()) {
    if (handle_.stream()->SetDegraded(false)) {
      GlobalTelemetry().degraded_cleared.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
  }
}

}  // namespace apollo
