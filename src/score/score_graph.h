// ScoreGraph: the SCoRe DAG registry.
//
// Owns Fact and Insight vertices, validates acyclicity when insight
// vertices are registered, computes graph properties (height h, Hamming
// distance from sources — the paper's §3.2 complexity model O(p*h)), and
// deploys/undeploys vertices on an EventLoop at runtime (§3.1: "users can
// register/unregister custom Fact and Insight vertices during the runtime
// of their application").
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/expected.h"
#include "eventloop/event_loop.h"
#include "score/fact_vertex.h"
#include "score/insight_vertex.h"

namespace apollo {

// Registry operations are mutex-guarded so the vertex supervisor (running
// on the event-loop thread) can walk the graph while clients register and
// unregister vertices from other threads. Returned vertex pointers stay
// valid until Remove(): callers coordinate teardown as before.
class ScoreGraph {
 public:
  explicit ScoreGraph(Broker& broker) : broker_(broker) {}

  ScoreGraph(const ScoreGraph&) = delete;
  ScoreGraph& operator=(const ScoreGraph&) = delete;

  // Registers (and optionally deploys) vertices. Topic names must be
  // unique across both kinds. Insight registration fails if it would close
  // a cycle.
  Expected<FactVertex*> AddFact(std::unique_ptr<FactVertex> vertex,
                                EventLoop* deploy_on = nullptr);
  Expected<InsightVertex*> AddInsight(std::unique_ptr<InsightVertex> vertex,
                                      EventLoop* deploy_on = nullptr);

  // Undeploys and removes a vertex (runtime unregister).
  Status Remove(const std::string& topic);

  Expected<FactVertex*> FindFact(const std::string& topic) const;
  Expected<InsightVertex*> FindInsight(const std::string& topic) const;
  bool Has(const std::string& topic) const;

  std::vector<std::string> FactTopics() const;
  std::vector<std::string> InsightTopics() const;
  // Every registered topic, facts then insights (each sorted). The recovery
  // path uses this to decide which archives belong to live vertices.
  std::vector<std::string> AllTopics() const;
  std::size_t NumVertices() const;

  // Deploys every registered vertex on `loop`; undeploys all.
  Status DeployAll(EventLoop& loop);
  void UndeployAll();

  // Longest upstream path from any Fact source to `topic` (0 for facts) —
  // the Hamming distance of §3.2. Unknown topic -> error.
  Expected<int> HammingDistance(const std::string& topic) const;

  // Height h of the DAG: max Hamming distance over all vertices.
  int Height() const;

  // Graphviz export of the SCoRe topology (facts as boxes, insights as
  // ellipses, edges following information flow) for debugging/ops.
  std::string ToDot() const;

  Broker& broker() { return broker_; }

 private:
  // Internal helpers assume mu_ is held by the caller.
  bool HasLocked(const std::string& topic) const;
  bool WouldCreateCycle(const std::string& topic,
                        const std::vector<std::string>& upstream) const;
  Expected<int> DistanceInternal(const std::string& topic,
                                 std::map<std::string, int>& memo,
                                 int depth) const;

  Broker& broker_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FactVertex>> facts_;
  std::map<std::string, std::unique_ptr<InsightVertex>> insights_;
};

}  // namespace apollo
