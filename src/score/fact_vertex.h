// Fact Vertex — a SCoRe source (§3.1, §3.2).
//
// Owns a Monitor Hook, an adaptive IntervalController, a dedicated stream
// (queue + optional Archiver) and, optionally, a Delphi predictor that
// publishes predicted Facts between polls.
//
// The vertex is driven by an EventLoop timer, so the same code runs in
// real time (latency benches) and virtual time (workload replays). One
// timer implements both polling and prediction: when the adaptive interval
// stretches beyond the prediction granularity, intermediate firings emit
// predicted samples until the next real poll is due.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "adaptive/interval_controller.h"
#include "common/clock.h"
#include "common/expected.h"
#include "common/fault.h"
#include "delphi/predictor.h"
#include "eventloop/event_loop.h"
#include "pubsub/broker.h"
#include "score/monitor_hook.h"
#include "score/vertex_stats.h"

namespace apollo {

struct FactVertexConfig {
  std::string topic;  // stream name; defaults to the hook's metric name
  NodeId node = kLocalNode;
  std::size_t queue_capacity = 4096;
  // "Facts are added only if there is a change from their previous value."
  bool publish_only_on_change = true;
  // Delphi fill-in period between polls; 0 disables prediction even when a
  // model is supplied.
  TimeNs prediction_granularity = 0;
  // Publish retry policy (broker-level exponential backoff). An exhausted
  // retry budget is surfaced in stats().publish_failures and telemetry.
  RetryPolicy publish_retry;
};

class FactVertex {
 public:
  // `delphi` may be null (no prediction). The vertex clones the model so
  // inference state is private.
  FactVertex(Broker& broker, MonitorHook hook,
             std::unique_ptr<IntervalController> controller,
             FactVertexConfig config,
             const delphi::DelphiModel* delphi = nullptr,
             Archiver<Sample>* archiver = nullptr);

  ~FactVertex();

  FactVertex(const FactVertex&) = delete;
  FactVertex& operator=(const FactVertex&) = delete;

  // Creates the topic and registers the polling timer on `loop`.
  Status Deploy(EventLoop& loop);

  // Cancels the timer. The topic (and its data) remain in the broker until
  // RemoveTopic is called explicitly.
  void Undeploy();

  // --- supervision surface ---
  // A vertex "crashes" when the kVertexPoll fault site fires in its timer
  // (the timer dies and the stream is marked degraded) or when ForceCrash
  // is called. The VertexSupervisor detects crashed/stalled vertices and
  // restarts them with bounded backoff.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  // Clock time of the vertex's most recent timer firing (deploy time until
  // the first poll). Supervisors treat a silent gap much larger than
  // ExpectedFireInterval() as a stall.
  TimeNs last_fire() const {
    return last_fire_.load(std::memory_order_acquire);
  }
  TimeNs ExpectedFireInterval() const;

  // Kills the vertex from outside its timer: cancels the timer, flags the
  // crash, and marks the stream degraded. No-op unless deployed and alive.
  void ForceCrash();

  // Restarts a crashed vertex: re-registers the timer (immediate poll) and
  // clears the crash flag. The stream stays degraded until the first
  // successful measured publish. Fails unless deployed and crashed.
  Status Restart();

  const std::string& topic() const { return config_.topic; }
  NodeId node() const { return config_.node; }
  const VertexStats& stats() const { return stats_; }
  VertexStats& mutable_stats() { return stats_; }
  TimeNs CurrentInterval() const { return controller_->CurrentInterval(); }
  const char* ControllerName() const { return controller_->Name(); }
  bool HasPredictor() const { return predictor_ != nullptr; }

 private:
  TimeNs OnTimer(TimeNs now);
  TimeNs DoRealPoll(TimeNs now);
  void DoPrediction(TimeNs now);
  void PublishSample(TimeNs now, double value, Provenance provenance);
  // Flags the crash and degrades the stream (shared by the injected-crash
  // path inside OnTimer and ForceCrash).
  void MarkCrashed();

  Broker& broker_;
  // Resolved once at deploy time; publishes skip the topic registry.
  TopicHandle handle_;
  MonitorHook hook_;
  std::unique_ptr<IntervalController> controller_;
  FactVertexConfig config_;
  std::unique_ptr<delphi::StreamingPredictor> predictor_;
  Archiver<Sample>* archiver_;

  EventLoop* loop_ = nullptr;
  TimerId timer_ = 0;
  bool deployed_ = false;
  std::atomic<bool> crashed_{false};
  std::atomic<TimeNs> last_fire_{0};

  TimeNs next_poll_time_ = 0;
  std::optional<double> last_published_;
  VertexStats stats_;
};

}  // namespace apollo
