#include "score/supervisor.h"

#include <algorithm>
#include <set>

#include "common/fault.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "pubsub/telemetry.h"

namespace apollo {

VertexSupervisor::VertexSupervisor(ScoreGraph& graph,
                                   SupervisorOptions options)
    : graph_(graph), options_(options) {}

VertexSupervisor::~VertexSupervisor() { Stop(); }

Status VertexSupervisor::Start(EventLoop& loop) {
  if (started_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "supervisor already started");
  }
  loop_ = &loop;
  timer_ = loop.AddTimer(options_.check_interval, [this](TimeNs now) {
    Poll(now);
    return options_.check_interval;
  });
  started_ = true;
  return Status::Ok();
}

void VertexSupervisor::Stop() {
  if (!started_) return;
  loop_->CancelTimer(timer_);
  started_ = false;
  loop_ = nullptr;
}

template <typename V>
void VertexSupervisor::SuperviseLocked(V& vertex, TimeNs now) {
  Entry& entry = entries_[vertex.topic()];
  if (entry.gave_up) return;

  if (!vertex.crashed()) {
    // Stall check: a firing gap far beyond the vertex's own cadence means
    // the timer died silently or the vertex is wedged. Convert it to a
    // crash so the restart path below handles it.
    const TimeNs threshold =
        std::max(options_.stall_timeout,
                 static_cast<TimeNs>(options_.stall_factor) *
                     vertex.ExpectedFireInterval());
    if (now - vertex.last_fire() > threshold) {
      stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      GlobalTelemetry().vertex_stalls.fetch_add(1, std::memory_order_relaxed);
      APOLLO_LOG(WARN) << "supervisor: vertex " << vertex.topic()
                       << " stalled (no firing for " << (now - vertex.last_fire())
                       << " ns), forcing crash";
      vertex.ForceCrash();
    } else {
      // Healthy. A sustained healthy stretch after a restart earns the
      // restart budget back.
      if (entry.restarts > 0 && entry.last_restart_at > 0 &&
          now - entry.last_restart_at > options_.healthy_reset) {
        entry.restarts = 0;
        entry.backoff = 0;
      }
      entry.was_crashed = false;
      return;
    }
  }

  // Crashed (or just force-crashed above).
  if (!entry.was_crashed) {
    entry.was_crashed = true;
    crashes_seen_.fetch_add(1, std::memory_order_relaxed);
  }
  if (entry.restarts >= options_.max_restarts) {
    entry.gave_up = true;
    give_ups_.fetch_add(1, std::memory_order_relaxed);
    GlobalTelemetry().vertex_give_ups.fetch_add(1, std::memory_order_relaxed);
    APOLLO_LOG(ERROR) << "supervisor: giving up on vertex " << vertex.topic()
                      << " after " << entry.restarts << " restarts";
    return;
  }
  if (entry.next_restart_at == 0) {
    if (entry.backoff == 0) entry.backoff = options_.initial_restart_backoff;
    // Full jitter on the actual wait (entry.backoff stays the exact
    // exponential ceiling so the growth schedule is unchanged).
    RetryPolicy jitter_policy;
    jitter_policy.initial_backoff = entry.backoff;
    jitter_policy.multiplier = 1.0;
    jitter_policy.max_backoff = entry.backoff;
    jitter_policy.jitter = options_.restart_jitter;
    entry.next_restart_at = now + JitteredBackoffForAttempt(jitter_policy, 1);
    return;
  }
  if (now < entry.next_restart_at) return;

  Status restarted = vertex.Restart();
  entry.next_restart_at = 0;
  if (!restarted.ok()) {
    APOLLO_LOG(ERROR) << "supervisor: restart of " << vertex.topic()
                      << " failed: " << restarted.ToString();
    return;
  }
  ++entry.restarts;
  entry.last_restart_at = now;
  entry.backoff = std::min(
      static_cast<TimeNs>(static_cast<double>(entry.backoff) *
                          options_.backoff_multiplier),
      options_.max_restart_backoff);
  entry.was_crashed = false;
  restarts_issued_.fetch_add(1, std::memory_order_relaxed);
  GlobalTelemetry().vertex_restarts.fetch_add(1, std::memory_order_relaxed);
  APOLLO_LOG(WARN) << "supervisor: restarted vertex " << vertex.topic()
                   << " (restart #" << entry.restarts << ")";
}

void VertexSupervisor::Poll(TimeNs now) {
  TRACE_SPAN("supervisor.poll");
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& topic : graph_.FactTopics()) {
    auto vertex = graph_.FindFact(topic);
    if (vertex.ok()) SuperviseLocked(**vertex, now);
  }
  for (const std::string& topic : graph_.InsightTopics()) {
    auto vertex = graph_.FindInsight(topic);
    if (vertex.ok()) SuperviseLocked(**vertex, now);
  }
}

std::vector<VertexSupervisor::VertexHealth> VertexSupervisor::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<VertexHealth> out;
  auto add = [&](const std::string& topic, NodeId node, bool crashed,
                 TimeNs last_fire) {
    VertexHealth health;
    health.topic = topic;
    health.node = node;
    health.crashed = crashed;
    health.last_fire = last_fire;
    if (auto it = entries_.find(topic); it != entries_.end()) {
      health.gave_up = it->second.gave_up;
      health.restarts = it->second.restarts;
    }
    out.push_back(std::move(health));
  };
  for (const std::string& topic : graph_.FactTopics()) {
    auto vertex = graph_.FindFact(topic);
    if (vertex.ok()) {
      add(topic, (*vertex)->node(), (*vertex)->crashed(),
          (*vertex)->last_fire());
    }
  }
  for (const std::string& topic : graph_.InsightTopics()) {
    auto vertex = graph_.FindInsight(topic);
    if (vertex.ok()) {
      add(topic, (*vertex)->node(), (*vertex)->crashed(),
          (*vertex)->last_fire());
    }
  }
  return out;
}

std::size_t VertexSupervisor::AvailableNodes() const {
  std::set<NodeId> known;
  std::set<NodeId> down;
  for (const VertexHealth& health : Snapshot()) {
    known.insert(health.node);
    if (health.crashed || health.gave_up) down.insert(health.node);
  }
  return known.size() - down.size();
}

std::size_t VertexSupervisor::KnownNodes() const {
  std::set<NodeId> known;
  for (const VertexHealth& health : Snapshot()) known.insert(health.node);
  return known.size();
}

bool VertexSupervisor::NodeHealthy(NodeId node) const {
  for (const VertexHealth& health : Snapshot()) {
    if (health.node == node && (health.crashed || health.gave_up)) {
      return false;
    }
  }
  return true;
}

MonitorHook SupervisorAvailableNodesHook(const VertexSupervisor& supervisor,
                                         TimeNs cost) {
  MonitorHook hook;
  hook.metric_name = "cluster.nodes_available";
  hook.cost = cost;
  hook.read = [&supervisor](TimeNs) {
    return static_cast<double>(supervisor.AvailableNodes());
  };
  return hook;
}

}  // namespace apollo
