#include "adaptive/entropy_controller.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace apollo {

double PermutationEntropy(const std::vector<double>& values, int m) {
  if (m < 2) m = 2;
  const std::size_t n = values.size();
  if (n < static_cast<std::size_t>(m)) return 0.0;

  // Count ordinal patterns. Encode each pattern as a permutation index.
  std::map<std::vector<int>, int> counts;
  const std::size_t tuples = n - static_cast<std::size_t>(m) + 1;
  std::vector<int> order(static_cast<std::size_t>(m));
  for (std::size_t start = 0; start < tuples; ++start) {
    for (int k = 0; k < m; ++k) order[static_cast<std::size_t>(k)] = k;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return values[start + static_cast<std::size_t>(a)] <
             values[start + static_cast<std::size_t>(b)];
    });
    ++counts[order];
  }

  double entropy = 0.0;
  for (const auto& [pattern, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(tuples);
    entropy -= p * std::log(p);
  }
  // Normalize by log(m!).
  double log_m_factorial = 0.0;
  for (int k = 2; k <= m; ++k) log_m_factorial += std::log(k);
  if (log_m_factorial <= 0.0) return 0.0;
  return entropy / log_m_factorial;
}

EntropyAimd::EntropyAimd(const EntropyAimdConfig& config)
    : config_(config), interval_(config.initial_interval) {}

TimeNs EntropyAimd::OnSample(double value) {
  window_.push_back(value);
  while (window_.size() > config_.window) window_.pop_front();

  if (window_.size() < static_cast<std::size_t>(config_.embedding)) {
    return interval_;
  }
  entropy_ = PermutationEntropy(
      std::vector<double>(window_.begin(), window_.end()),
      config_.embedding);

  const double factor = entropy_ <= config_.target_entropy
                            ? config_.relax_factor
                            : config_.tighten_factor;
  interval_ = static_cast<TimeNs>(static_cast<double>(interval_) * factor);
  interval_ = std::max(config_.min_interval,
                       std::min(config_.max_interval, interval_));
  return interval_;
}

void EntropyAimd::Reset() {
  interval_ = config_.initial_interval;
  window_.clear();
  entropy_ = 0.0;
}

}  // namespace apollo
