// Adaptive & dynamic monitoring interval controllers (§3.4.1).
//
// After every poll the Monitor Hook reports the observed value; the
// controller answers "how long until the next poll". Three policies:
//
//  - FixedInterval: the static baseline (what Ganglia/LDMS do).
//  - SimpleAimd: Additive-Increase/Multiplicative-Decrease on the raw
//    change. Change within threshold -> interval += add_step; otherwise
//    interval *= decrease_factor.
//  - ComplexAimd (adaptive parameterized): compares each change against a
//    rolling average of recent changes (window 10 in the paper), which
//    tolerates metrics that bounce between discrete value groupings.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "timeseries/stats.h"

namespace apollo {

class IntervalController {
 public:
  virtual ~IntervalController() = default;

  // Reports a freshly polled value; returns the interval until the next
  // poll.
  virtual TimeNs OnSample(double value) = 0;

  // Interval that would be used right now without new information.
  virtual TimeNs CurrentInterval() const = 0;

  virtual const char* Name() const = 0;
  virtual void Reset() = 0;
};

class FixedInterval final : public IntervalController {
 public:
  explicit FixedInterval(TimeNs interval) : interval_(interval) {}

  TimeNs OnSample(double /*value*/) override { return interval_; }
  TimeNs CurrentInterval() const override { return interval_; }
  const char* Name() const override { return "fixed"; }
  void Reset() override {}

 private:
  TimeNs interval_;
};

struct AimdConfig {
  TimeNs initial_interval = Seconds(1);
  TimeNs min_interval = Millis(100);
  TimeNs max_interval = Seconds(30);
  TimeNs additive_step = Seconds(1);   // added when the metric is stable
  double decrease_factor = 0.5;        // multiplied when it is changing
  double change_threshold = 0.0;       // |change| (or deviation) <= threshold
                                       //   counts as "stable"
};

class SimpleAimd final : public IntervalController {
 public:
  explicit SimpleAimd(const AimdConfig& config);

  TimeNs OnSample(double value) override;
  TimeNs CurrentInterval() const override { return interval_; }
  const char* Name() const override { return "simple_aimd"; }
  void Reset() override;

  const AimdConfig& config() const { return config_; }

 private:
  AimdConfig config_;
  TimeNs interval_;
  bool has_prev_ = false;
  double prev_value_ = 0.0;
};

class ComplexAimd final : public IntervalController {
 public:
  // `window` is the rolling-average length over past changes (paper: 10).
  ComplexAimd(const AimdConfig& config, std::size_t window = 10);

  TimeNs OnSample(double value) override;
  TimeNs CurrentInterval() const override { return interval_; }
  const char* Name() const override { return "complex_aimd"; }
  void Reset() override;

  std::size_t window() const { return rolling_.Window(); }

 private:
  AimdConfig config_;
  TimeNs interval_;
  bool has_prev_ = false;
  double prev_value_ = 0.0;
  RollingMean rolling_;
};

// Factory helpers.
std::unique_ptr<IntervalController> MakeController(const std::string& kind,
                                                   const AimdConfig& config,
                                                   TimeNs fixed_interval);

}  // namespace apollo
