#include "adaptive/interval_controller.h"

#include <cmath>

#include "adaptive/entropy_controller.h"

namespace apollo {

namespace {
TimeNs Clamp(TimeNs value, TimeNs lo, TimeNs hi) {
  return std::max(lo, std::min(hi, value));
}
}  // namespace

SimpleAimd::SimpleAimd(const AimdConfig& config)
    : config_(config), interval_(config.initial_interval) {}

TimeNs SimpleAimd::OnSample(double value) {
  if (!has_prev_) {
    has_prev_ = true;
    prev_value_ = value;
    return interval_;
  }
  const double change = std::fabs(value - prev_value_);
  prev_value_ = value;
  if (change <= config_.change_threshold) {
    interval_ += config_.additive_step;
  } else {
    interval_ = static_cast<TimeNs>(static_cast<double>(interval_) *
                                    config_.decrease_factor);
  }
  interval_ = Clamp(interval_, config_.min_interval, config_.max_interval);
  return interval_;
}

void SimpleAimd::Reset() {
  interval_ = config_.initial_interval;
  has_prev_ = false;
  prev_value_ = 0.0;
}

ComplexAimd::ComplexAimd(const AimdConfig& config, std::size_t window)
    : config_(config), interval_(config.initial_interval), rolling_(window) {}

TimeNs ComplexAimd::OnSample(double value) {
  if (!has_prev_) {
    has_prev_ = true;
    prev_value_ = value;
    return interval_;
  }
  const double change = std::fabs(value - prev_value_);
  prev_value_ = value;
  // Deviation from the expected (rolling average) change, not from the
  // previous value — this is what lets discrete bouncing metrics settle.
  const double expected = rolling_.Value();
  const double deviation = std::fabs(change - expected);
  rolling_.Add(change);
  if (deviation <= config_.change_threshold) {
    interval_ += config_.additive_step;
  } else {
    interval_ = static_cast<TimeNs>(static_cast<double>(interval_) *
                                    config_.decrease_factor);
  }
  interval_ = Clamp(interval_, config_.min_interval, config_.max_interval);
  return interval_;
}

void ComplexAimd::Reset() {
  interval_ = config_.initial_interval;
  has_prev_ = false;
  prev_value_ = 0.0;
  rolling_.Reset();
}

std::unique_ptr<IntervalController> MakeController(const std::string& kind,
                                                   const AimdConfig& config,
                                                   TimeNs fixed_interval) {
  if (kind == "fixed") return std::make_unique<FixedInterval>(fixed_interval);
  if (kind == "simple_aimd") return std::make_unique<SimpleAimd>(config);
  if (kind == "complex_aimd") return std::make_unique<ComplexAimd>(config);
  if (kind == "entropy_aimd") {
    EntropyAimdConfig entropy_config;
    entropy_config.initial_interval = config.initial_interval;
    entropy_config.min_interval = config.min_interval;
    entropy_config.max_interval = config.max_interval;
    entropy_config.tighten_factor = config.decrease_factor;
    return std::make_unique<EntropyAimd>(entropy_config);
  }
  return nullptr;
}

}  // namespace apollo
