// Permutation-entropy-based adaptive interval — the paper's future-work
// heuristic ("a more intricate heuristic metric inspired by entropy
// changes in physics", §6, citing Cao et al.'s permutation entropy).
//
// The controller embeds the recent value window into ordinal patterns of
// dimension m and computes the normalized permutation entropy H in [0, 1]:
// low H = the series is ordinally predictable (monotone/constant/strictly
// periodic) and polling can relax; high H = the dynamics are changing and
// polling must tighten. The interval is driven multiplicatively by the
// distance between H and a target entropy.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "adaptive/interval_controller.h"

namespace apollo {

// Normalized permutation entropy of `values` with embedding dimension m
// (2..5). Returns 0 for fewer than m values. Ties are broken by position
// (stable), following the usual convention.
double PermutationEntropy(const std::vector<double>& values, int m);

struct EntropyAimdConfig {
  TimeNs initial_interval = Seconds(1);
  TimeNs min_interval = Seconds(1);
  TimeNs max_interval = Seconds(30);
  std::size_t window = 16;     // samples kept for the entropy estimate
  int embedding = 3;           // ordinal pattern length m
  double target_entropy = 0.4; // H below target -> relax, above -> tighten
  double relax_factor = 1.25;  // interval *= relax_factor when predictable
  double tighten_factor = 0.5; // interval *= tighten_factor when chaotic
};

class EntropyAimd final : public IntervalController {
 public:
  explicit EntropyAimd(const EntropyAimdConfig& config);

  TimeNs OnSample(double value) override;
  TimeNs CurrentInterval() const override { return interval_; }
  const char* Name() const override { return "entropy_aimd"; }
  void Reset() override;

  // Most recent entropy estimate (0 until the window has `embedding`
  // samples).
  double CurrentEntropy() const { return entropy_; }

 private:
  EntropyAimdConfig config_;
  TimeNs interval_;
  std::deque<double> window_;
  double entropy_ = 0.0;
};

}  // namespace apollo
